//! Single-shot consensus on pointers, from compare-and-swap.
//!
//! The universal construction threads its log by having processes *agree*
//! on each node's successor. With hardware CAS, consensus for any number
//! of processes is a one-liner: first CAS from null wins, everyone
//! returns the stored winner. This module wraps that idiom with a safe
//! API and documents the protocol obligations.

use kex_util::sync::atomic::AtomicPtr;

use crate::ordering::SEQ_CST;

/// A single-shot, wait-free, `n`-process consensus object deciding a
/// non-null raw pointer.
#[derive(Debug)]
pub struct PtrConsensus<T> {
    cell: AtomicPtr<T>,
}

impl<T> Default for PtrConsensus<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PtrConsensus<T> {
    /// An undecided consensus object.
    pub fn new() -> Self {
        PtrConsensus {
            cell: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Propose `value` (must be non-null); returns the decided value —
    /// `value` if this call won, the winner's proposal otherwise.
    ///
    /// Wait-free: one CAS and at most one load.
    pub fn decide(&self, value: *mut T) -> *mut T {
        debug_assert!(!value.is_null(), "consensus proposals must be non-null");
        match self
            .cell
            .compare_exchange(std::ptr::null_mut(), value, SEQ_CST, SEQ_CST)
        {
            Ok(_) => value,
            Err(winner) => winner,
        }
    }

    /// The decided value, or null if undecided.
    pub fn peek(&self) -> *mut T {
        self.cell.load(SEQ_CST)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_proposal_wins_and_is_stable() {
        let c = PtrConsensus::<u32>::new();
        let a = Box::into_raw(Box::new(1u32));
        let b = Box::into_raw(Box::new(2u32));
        assert!(c.peek().is_null());
        assert_eq!(c.decide(a), a);
        assert_eq!(c.decide(b), a, "later proposals see the winner");
        assert_eq!(c.peek(), a);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn concurrent_deciders_agree() {
        let c = PtrConsensus::<usize>::new();
        let proposals: Vec<*mut usize> = (0..8).map(|i| Box::into_raw(Box::new(i))).collect();
        // Raw pointers are not Send; smuggle them as usizes for the test.
        let addrs: Vec<usize> = proposals.iter().map(|p| *p as usize).collect();
        let decisions: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = addrs
                .iter()
                .map(|&addr| {
                    let c = &c;
                    s.spawn(move || c.decide(addr as *mut usize) as usize)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(decisions.windows(2).all(|w| w[0] == w[1]), "split decision");
        assert!(addrs.contains(&decisions[0]), "decision must be a proposal");
        for p in proposals {
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

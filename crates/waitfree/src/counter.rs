//! Wait-free counters for `k` processes.
//!
//! Two flavours:
//!
//! * [`SlotCounter`] — one padded cell per process name; `add` touches
//!   only the caller's cell (one uncontended RMW), `read` sums all `k`
//!   cells. This is the shape the paper's methodology rewards: the inner
//!   object only needs to be correct for `k` processes, so per-name
//!   slotting — impossible for unbounded process universes — becomes
//!   trivial and contention-free.
//! * [`FetchAddCounter`] — a single hardware fetch-and-add word, for
//!   comparison; still wait-free (hardware RMW) but every `add` contends
//!   on one cache line.

use kex_util::sync::atomic::AtomicI64;

use crate::ordering::SEQ_CST;

use kex_util::CachePadded;

/// Per-name slotted counter: contention-free wait-free adds, `O(k)`
/// wait-free reads.
#[derive(Debug)]
pub struct SlotCounter {
    slots: Vec<CachePadded<AtomicI64>>,
}

impl SlotCounter {
    /// A counter for `k` process names.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one slot");
        SlotCounter {
            slots: (0..k)
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
        }
    }

    /// Number of slots `k`.
    pub fn k(&self) -> usize {
        self.slots.len()
    }

    /// Add `delta` on behalf of name `me` (single uncontended RMW).
    ///
    /// # Panics
    /// Panics if `me >= k`.
    pub fn add(&self, me: usize, delta: i64) {
        self.slots[me].fetch_add(delta, SEQ_CST);
    }

    /// Read the counter: the sum of all slots. Linearizable when
    /// concurrent adds only move slots in one direction; otherwise a
    /// consistent "regular" read.
    pub fn read(&self) -> i64 {
        self.slots.iter().map(|s| s.load(SEQ_CST)).sum()
    }
}

/// Single-word fetch-and-add counter (the contended comparison point).
#[derive(Debug, Default)]
pub struct FetchAddCounter {
    value: CachePadded<AtomicI64>,
}

impl FetchAddCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta`; returns the previous value.
    pub fn add(&self, delta: i64) -> i64 {
        self.value.fetch_add(delta, SEQ_CST)
    }

    /// Read the current value.
    pub fn read(&self) -> i64 {
        self.value.load(SEQ_CST)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counter_sums_all_names() {
        let c = SlotCounter::new(3);
        c.add(0, 5);
        c.add(1, -2);
        c.add(2, 10);
        assert_eq!(c.read(), 13);
    }

    #[test]
    fn concurrent_adds_are_all_counted() {
        let k = 4;
        let per = 10_000;
        let c = SlotCounter::new(k);
        std::thread::scope(|s| {
            for me in 0..k {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..per {
                        c.add(me, 1);
                    }
                });
            }
        });
        assert_eq!(c.read(), (k * per) as i64);
    }

    #[test]
    fn fetch_add_counter_matches() {
        let c = FetchAddCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.read(), 40_000);
    }

    #[test]
    #[should_panic]
    fn slot_counter_rejects_foreign_names() {
        SlotCounter::new(2).add(2, 1);
    }
}

//! A wait-free atomic snapshot object for `k` processes.
//!
//! The classic single-writer construction of Afek, Attiya, Dolev, Gafni,
//! Merritt & Shavit: each process owns one register; an **update** embeds
//! the result of a scan (its "view") alongside the new value and a
//! sequence number; a **scan** performs repeated double collects, and if
//! it sees some register change *twice*, it borrows that register's
//! embedded view, which is guaranteed to have been taken entirely within
//! the scan's interval. Hence every scan returns after at most `k+1`
//! collects — wait-free — and all scans/updates linearize.
//!
//! Register cells are heap-allocated immutable records swapped in via
//! `AtomicPtr`. Replaced cells are *retired*, not freed: they go on a
//! per-object retire list reclaimed when the `Snapshot` is dropped. A
//! reader holding `&Snapshot` therefore never races a free (dropping
//! requires exclusive ownership), at the cost of memory proportional to
//! the number of updates over the object's lifetime — the right
//! trade-off for a reference implementation with no epoch-GC runtime.
//!
//! Like everything in this crate, the object serves processes named
//! `0..k` — the identities handed out by the k-assignment wrapper.

use kex_util::sync::atomic::AtomicPtr;

use crate::ordering::SEQ_CST;

use kex_util::sync::Mutex;

/// One register's immutable cell.
#[derive(Debug)]
struct Cell<T> {
    value: T,
    seq: u64,
    /// The writer's embedded scan (empty for the initial cell).
    view: Vec<T>,
}

/// A `k`-process single-writer atomic snapshot object.
///
/// ```rust
/// use kex_waitfree::Snapshot;
///
/// let snap: Snapshot<u64> = Snapshot::new(3);
/// snap.update(1, 42); // process named 1 writes its own register
/// assert_eq!(snap.scan(), vec![0, 42, 0]); // one coherent view
/// ```
#[derive(Debug)]
pub struct Snapshot<T> {
    regs: Vec<AtomicPtr<Cell<T>>>,
    /// Cells unlinked by `update`; freed in `Drop`.
    retired: Mutex<Vec<*mut Cell<T>>>,
    k: usize,
}

// The raw cell pointers are owned by this object and only ever
// dereferenced while it is alive; `T: Send + Sync` makes the shared
// cells safe to touch from any thread.
unsafe impl<T: Send + Sync> Send for Snapshot<T> {}
unsafe impl<T: Send + Sync> Sync for Snapshot<T> {}

impl<T: Clone + Default + Send + Sync + 'static> Snapshot<T> {
    /// A snapshot object of `k` registers, all initially `T::default()`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one register");
        Snapshot {
            regs: (0..k)
                .map(|_| {
                    AtomicPtr::new(Box::into_raw(Box::new(Cell {
                        value: T::default(),
                        seq: 0,
                        view: Vec::new(),
                    })))
                })
                .collect(),
            retired: Mutex::new(Vec::new()),
            k,
        }
    }

    /// Number of registers / processes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Dereference register `i`'s current cell.
    ///
    /// Safe while `&self` is alive: cells are retired, never freed,
    /// until `Drop` (which requires exclusive ownership).
    fn cell(&self, i: usize) -> &Cell<T> {
        unsafe { &*self.regs[i].load(SEQ_CST) }
    }

    /// Collect `(seq, value)` of every register (one pass, not atomic).
    fn collect(&self) -> Vec<(u64, T)> {
        (0..self.k)
            .map(|i| {
                let cell = self.cell(i);
                (cell.seq, cell.value.clone())
            })
            .collect()
    }

    /// Wait-free atomic scan: returns a vector `v` such that `v[i]` is
    /// register `i`'s value at a single linearization point inside the
    /// call.
    pub fn scan(&self) -> Vec<T> {
        let mut moved = vec![false; self.k];
        let mut a = self.collect();
        loop {
            let b = self.collect();
            let mut changed = None;
            for i in 0..self.k {
                if a[i].0 != b[i].0 {
                    changed = Some(i);
                    if moved[i] {
                        // Register i changed twice during our scan: its
                        // current embedded view was taken entirely within
                        // our interval — borrow it.
                        return self.cell(i).view.clone();
                    }
                    moved[i] = true;
                }
            }
            match changed {
                None => return b.into_iter().map(|(_, v)| v).collect(),
                Some(_) => a = b,
            }
        }
    }

    /// Wait-free update of the caller's own register (`me` in `0..k`).
    ///
    /// # Panics
    /// Panics if `me >= k`. Two concurrent updates with the same `me`
    /// violate the single-writer contract.
    pub fn update(&self, me: usize, value: T) {
        assert!(me < self.k, "name {me} out of range 0..{}", self.k);
        // Embed a fresh scan, as the algorithm requires.
        let view = self.scan();
        let seq = self.cell(me).seq + 1;
        let new = Box::into_raw(Box::new(Cell { value, seq, view }));
        let prev = self.regs[me].swap(new, SEQ_CST);
        self.retired.lock().push(prev);
    }

    /// Read one register without a full scan (still linearizable for a
    /// single register).
    pub fn read(&self, i: usize) -> T {
        assert!(i < self.k, "register {i} out of range 0..{}", self.k);
        self.cell(i).value.clone()
    }
}

impl<T> Drop for Snapshot<T> {
    fn drop(&mut self) {
        // Exclusive access: no reader can hold a cell reference now.
        for r in &self.regs {
            let p = r.swap(std::ptr::null_mut(), SEQ_CST);
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        }
        for p in self.retired.get_mut().drain(..) {
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kex_util::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn scan_sees_updates() {
        let s: Snapshot<u64> = Snapshot::new(3);
        assert_eq!(s.scan(), vec![0, 0, 0]);
        s.update(1, 42);
        assert_eq!(s.scan(), vec![0, 42, 0]);
        assert_eq!(s.read(1), 42);
    }

    #[test]
    fn concurrent_scans_are_monotone_per_register() {
        // Single-writer registers only grow (we write increasing values),
        // so every scanned vector must be pointwise monotone over time
        // from any one scanner's perspective.
        let k = 3;
        let s: Snapshot<u64> = Snapshot::new(k);
        let stop = AtomicBool::new(false);
        std::thread::scope(|sc| {
            for me in 0..k {
                let (s, stop) = (&s, &stop);
                sc.spawn(move || {
                    for i in 1..=300u64 {
                        s.update(me, i);
                    }
                    if me == 0 {
                        stop.store(true, Ordering::SeqCst);
                    }
                });
            }
            let (s, stop) = (&s, &stop);
            sc.spawn(move || {
                let mut last = vec![0u64; k];
                while !stop.load(Ordering::SeqCst) {
                    let now = s.scan();
                    for i in 0..k {
                        assert!(
                            now[i] >= last[i],
                            "register {i} went backwards: {last:?} -> {now:?}"
                        );
                    }
                    last = now;
                }
            });
        });
    }

    #[test]
    fn snapshots_are_comparable_total_order() {
        // Linearizability of scans implies any two scans are pointwise
        // comparable when writers only increment their own register.
        let k = 4;
        let s: Snapshot<u64> = Snapshot::new(k);
        let scans: Vec<Vec<Vec<u64>>> = std::thread::scope(|sc| {
            let writers: Vec<_> = (0..k)
                .map(|me| {
                    let s = &s;
                    sc.spawn(move || {
                        for i in 1..=100u64 {
                            s.update(me, i);
                        }
                    })
                })
                .collect();
            let scanners: Vec<_> = (0..2)
                .map(|_| {
                    let s = &s;
                    sc.spawn(move || (0..200).map(|_| s.scan()).collect::<Vec<_>>())
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            scanners.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<Vec<u64>> = scans.into_iter().flatten().collect();
        all.sort();
        for w in all.windows(2) {
            let (x, y) = (&w[0], &w[1]);
            assert!(
                (0..k).all(|i| x[i] <= y[i]),
                "incomparable snapshots {x:?} / {y:?}: scans not linearizable"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_rejects_foreign_names() {
        Snapshot::<u8>::new(2).update(2, 1);
    }

    #[test]
    fn drop_reclaims_retired_cells() {
        // Smoke test that Drop walks both live and retired cells without
        // double-freeing (run under the normal allocator this would
        // abort on corruption).
        let s: Snapshot<u64> = Snapshot::new(2);
        for i in 0..50 {
            s.update(0, i);
            s.update(1, i);
        }
        drop(s);
    }
}

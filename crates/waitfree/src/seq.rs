//! Sequential object specifications for the universal construction.
//!
//! A [`Sequential`] object is an ordinary single-threaded data structure
//! with a deterministic `apply` function over a value-like operation
//! type. The universal construction in [`crate::universal`] turns any
//! such specification into a linearizable, wait-free `k`-process object
//! by agreeing on a total order of operations and replaying them.

use std::collections::VecDeque;

/// A deterministic sequential object.
///
/// `apply` must be a pure function of the object state and the operation:
/// replaying the same operation sequence from [`Default::default`] must
/// always produce the same states and responses. (No randomness, no
/// clocks, no interior mutability.)
pub trait Sequential: Default {
    /// The operation type (the "invocation"). Cloned freely by helpers.
    type Op: Clone + Send + Sync;
    /// The response type.
    type Resp;

    /// Apply one operation, mutating the state and producing a response.
    fn apply(&mut self, op: &Self::Op) -> Self::Resp;
}

/// Operations on a FIFO queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueOp<T> {
    /// Append a value at the tail.
    Enqueue(T),
    /// Remove the head value, if any.
    Dequeue,
}

/// A sequential FIFO queue specification.
#[derive(Debug, Clone)]
pub struct SeqQueue<T> {
    items: VecDeque<T>,
}

impl<T> Default for SeqQueue<T> {
    fn default() -> Self {
        SeqQueue {
            items: VecDeque::new(),
        }
    }
}

impl<T: Clone + Send + Sync> Sequential for SeqQueue<T> {
    type Op = QueueOp<T>;
    type Resp = Option<T>;

    fn apply(&mut self, op: &Self::Op) -> Self::Resp {
        match op {
            QueueOp::Enqueue(v) => {
                self.items.push_back(v.clone());
                None
            }
            QueueOp::Dequeue => self.items.pop_front(),
        }
    }
}

/// Operations on a LIFO stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackOp<T> {
    /// Push a value.
    Push(T),
    /// Pop the most recent value, if any.
    Pop,
}

/// A sequential stack specification.
#[derive(Debug, Clone)]
pub struct SeqStack<T> {
    items: Vec<T>,
}

impl<T> Default for SeqStack<T> {
    fn default() -> Self {
        SeqStack { items: Vec::new() }
    }
}

impl<T: Clone + Send + Sync> Sequential for SeqStack<T> {
    type Op = StackOp<T>;
    type Resp = Option<T>;

    fn apply(&mut self, op: &Self::Op) -> Self::Resp {
        match op {
            StackOp::Push(v) => {
                self.items.push(v.clone());
                None
            }
            StackOp::Pop => self.items.pop(),
        }
    }
}

/// Operations on a read/write register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterOp<T> {
    /// Read the current value.
    Read,
    /// Overwrite the value.
    Write(T),
}

/// A sequential register specification (initially `T::default()`).
#[derive(Debug, Clone, Default)]
pub struct SeqRegister<T> {
    value: T,
}

impl<T: Clone + Default + Send + Sync> Sequential for SeqRegister<T> {
    type Op = RegisterOp<T>;
    type Resp = T;

    fn apply(&mut self, op: &Self::Op) -> Self::Resp {
        match op {
            RegisterOp::Read => self.value.clone(),
            RegisterOp::Write(v) => std::mem::replace(&mut self.value, v.clone()),
        }
    }
}

/// Operations on a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterOp {
    /// Add a (possibly negative) delta; responds with the new value.
    Add(i64),
    /// Read the current value.
    Get,
}

/// A sequential counter specification.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqCounter {
    value: i64,
}

impl Sequential for SeqCounter {
    type Op = CounterOp;
    type Resp = i64;

    fn apply(&mut self, op: &Self::Op) -> Self::Resp {
        match op {
            CounterOp::Add(d) => {
                self.value += d;
                self.value
            }
            CounterOp::Get => self.value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_is_fifo() {
        let mut q = SeqQueue::default();
        assert_eq!(q.apply(&QueueOp::Enqueue(1)), None);
        assert_eq!(q.apply(&QueueOp::Enqueue(2)), None);
        assert_eq!(q.apply(&QueueOp::Dequeue), Some(1));
        assert_eq!(q.apply(&QueueOp::Dequeue), Some(2));
        assert_eq!(q.apply(&QueueOp::Dequeue), None);
    }

    #[test]
    fn stack_is_lifo() {
        let mut s = SeqStack::default();
        s.apply(&StackOp::Push("a"));
        s.apply(&StackOp::Push("b"));
        assert_eq!(s.apply(&StackOp::Pop), Some("b"));
        assert_eq!(s.apply(&StackOp::Pop), Some("a"));
        assert_eq!(s.apply(&StackOp::Pop), None);
    }

    #[test]
    fn register_returns_previous_value_on_write() {
        let mut r = SeqRegister::<i32>::default();
        assert_eq!(r.apply(&RegisterOp::Read), 0);
        assert_eq!(r.apply(&RegisterOp::Write(5)), 0);
        assert_eq!(r.apply(&RegisterOp::Read), 5);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = SeqCounter::default();
        assert_eq!(c.apply(&CounterOp::Add(3)), 3);
        assert_eq!(c.apply(&CounterOp::Add(-1)), 2);
        assert_eq!(c.apply(&CounterOp::Get), 2);
    }

    #[test]
    fn replay_determinism() {
        // The property the universal construction relies on.
        let ops = [
            QueueOp::Enqueue(10),
            QueueOp::Dequeue,
            QueueOp::Enqueue(20),
            QueueOp::Enqueue(30),
            QueueOp::Dequeue,
        ];
        let run = || {
            let mut q = SeqQueue::default();
            ops.iter().map(|op| q.apply(op)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

//! Typed wait-free multi-writer register, instantiating the universal
//! construction.
//!
//! For a *single*-writer-per-name register with scan support, prefer
//! [`crate::snapshot::Snapshot`], which is far cheaper; `WfRegister`
//! exists for the true multi-writer case (any name may overwrite) and as
//! the simplest end-to-end exercise of [`crate::universal::Universal`].

use crate::seq::{RegisterOp, SeqRegister};
use crate::universal::Universal;

/// A linearizable, wait-free multi-writer multi-reader register for `k`
/// processes, initially `T::default()`.
#[derive(Debug)]
pub struct WfRegister<T: Clone + Default + Send + Sync> {
    inner: Universal<SeqRegister<T>>,
}

impl<T: Clone + Default + Send + Sync> WfRegister<T> {
    /// A register for `k` processes.
    pub fn new(k: usize) -> Self {
        WfRegister {
            inner: Universal::new(k),
        }
    }

    /// The process bound `k`.
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// Read the current value on behalf of name `me`.
    pub fn read(&self, me: usize) -> T {
        self.inner.apply(me, RegisterOp::Read)
    }

    /// Write `value`; returns the previous value (linearized).
    pub fn write(&self, me: usize, value: T) -> T {
        self.inner.apply(me, RegisterOp::Write(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let r: WfRegister<u32> = WfRegister::new(2);
        assert_eq!(r.read(0), 0);
        assert_eq!(r.write(1, 7), 0);
        assert_eq!(r.read(0), 7);
        assert_eq!(r.write(0, 9), 7);
    }

    #[test]
    fn writes_linearize_previous_values_chain() {
        // Every write returns the previous value, so the multiset of
        // (returned, written) pairs must chain: each written value is
        // returned by exactly one later write (or is the final value).
        let k = 3;
        let per = 100u64;
        let r: WfRegister<u64> = WfRegister::new(k);
        let returned: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|me| {
                    let r = &r;
                    s.spawn(move || {
                        (0..per)
                            .map(|i| r.write(me, (me as u64 + 1) * 1_000 + i))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut seen: Vec<u64> = returned.into_iter().flatten().collect();
        seen.push(r.read(0)); // the final value completes the chain
        seen.sort_unstable();
        // Expected: initial 0 plus every written value exactly once.
        let mut expect: Vec<u64> = (0..k as u64)
            .flat_map(|me| (0..per).map(move |i| (me + 1) * 1_000 + i))
            .collect();
        expect.push(0);
        expect.sort_unstable();
        assert_eq!(seen, expect, "lost or duplicated write linearizations");
    }
}

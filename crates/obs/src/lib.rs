//! # kex-obs — lock-free runtime observability for the native layer
//!
//! The paper's entire evaluation is *remote-memory-reference* (RMR)
//! accounting: Table 1 and Theorems 1–10 bound the number of remote
//! shared-memory accesses per critical-section acquisition under the
//! cache-coherent (CC) and distributed-shared-memory (DSM) machine
//! models. The statement-exact simulator (`kex-sim`) counts those
//! references precisely, but only for protocol IR programs. This crate
//! makes the *native* Rust implementations observable at runtime:
//!
//! * [`atomic`] — drop-in instrumented replacements for
//!   `std::sync::atomic` types. Every operation increments per-process,
//!   per-section counters (op kind, call site, and **estimated** remote
//!   references under both cost models) and then performs the real
//!   hardware operation with the caller's ordering. The estimators
//!   mirror `kex-sim`'s `classify_read`/`classify_write` rules exactly:
//!   a per-variable holder bitmask for CC, a static owner for DSM (set
//!   via [`atomic::assign_home`]).
//! * [`span`] — scoped section annotation. The native algorithms open a
//!   span at each section boundary (entry section, exit section,
//!   critical section); while the span is live, every instrumented
//!   operation and spin iteration on that thread is attributed to the
//!   `(process, section)` pair. Spans nest; only the outermost span of a
//!   section records latency and completion.
//! * Per-process fixed-bucket latency **histograms** (power-of-two
//!   nanosecond buckets, allocation-free), a critical-section
//!   **occupancy gauge** (current / high-water, the native analogue of
//!   the simulator's occupancy invariant), and a bounded per-process
//!   **event ring** for post-mortem traces of stalls and crash-in-CS
//!   scenarios.
//! * [`snapshot()`] / [`reset()`] — a consistent-enough copy of every
//!   counter, renderable to JSON ([`Snapshot::to_json`]) with the
//!   dependency-free writer in [`json`]. `kex-bench` uses this to emit
//!   `BENCH_native.json`.
//!
//! ## This crate is a *backend*, not a public dependency
//!
//! Algorithm code never imports `kex_obs` directly: it imports
//! `kex_util::sync::atomic` and `kex_util::sync::hint`, and the facade
//! selects this crate when built with `--features obs` (and `std` or
//! `kex-loom` otherwise). Under `cfg(loom)` the facade always prefers
//! the model checker and the span shim in `kex-core` compiles to a
//! no-op, so observability can never perturb model-checked
//! interleavings.
//!
//! ## Memory ordering of the instrumentation itself
//!
//! All bookkeeping uses `Relaxed` operations on independent counters:
//! the instrumentation never synchronizes anything and adds no fences
//! beyond the instrumented operation itself (which runs with the
//! caller's requested ordering, unchanged). Counter visibility to a
//! snapshotting thread is established by whatever synchronization the
//! benchmark already performs (typically `JoinHandle::join`).
//!
//! ## Accuracy of the RMR estimators
//!
//! The estimates are *estimates*: the holder-bitmask update itself races
//! benignly with concurrent accesses to the same variable, `fetch_update`
//! is counted as one RMW even when the underlying CAS loop retries, and
//! processes with ids ≥ [`MAX_PIDS`] are counted as always-remote under
//! CC. See `docs/OBSERVABILITY.md` for how the numbers relate to the
//! simulator's exact counts and the Table 1 formulas.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomic;
mod counters;
mod hist;
pub mod json;
mod ring;
mod sites;
mod snapshot;

pub use counters::{span, Section, SpanGuard};
pub use snapshot::{
    snapshot, EventSnapshot, HistSnapshot, OccupancySnapshot, PidSnapshot, SectionTotals,
    SiteSnapshot, Snapshot,
};

/// Maximum number of distinct process ids tracked individually.
///
/// Matches the simulator's `MAX_PROCESSES` (the CC holder sets are `u64`
/// bitmasks). Operations attributed to pids at or above this limit — or
/// performed outside any [`span`] — land in the shared *untracked*
/// bucket and are counted as CC-remote.
pub const MAX_PIDS: usize = 64;

/// Spin-hint shim for the instrumented backend: counts the iteration
/// against the current `(process, section)` context, then issues the
/// real `std::hint::spin_loop`.
pub mod hint {
    /// Counted spin hint; see the module docs.
    #[inline]
    pub fn spin_loop() {
        crate::counters::record_spin();
        std::hint::spin_loop();
    }
}

/// Resets every counter, histogram, site tally, event ring, and the
/// occupancy high-water mark to zero.
///
/// Call this between benchmark phases **while no instrumented code is
/// running**: resetting under concurrent activity is memory-safe but
/// yields torn numbers. The CC holder masks and DSM homes live inside
/// the instrumented atomics themselves and are *not* cleared — cache
/// state survives a reset, exactly like real hardware surviving a
/// counter reset.
pub fn reset() {
    counters::reset();
    sites::reset();
}

#[cfg(test)]
pub(crate) mod testlock {
    //! Counters are process-global, so tests that assert exact values
    //! serialize on this lock (and tolerate reset races by holding it
    //! across reset + work + snapshot).
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

//! Lock-free per-call-site counters.
//!
//! Every instrumented atomic operation carries its `#[track_caller]`
//! `&'static Location`, interned here into a fixed-capacity,
//! linear-probing hash table keyed by the location's address (CAS
//! claims an empty slot; addresses of `'static` locations never move).
//! Codegen may duplicate a `Location` across codegen units, so the
//! snapshot layer merges slots by rendered `file:line` — the table only
//! needs pointer identity to stay lock-free.
//!
//! Capacity is fixed ([`SITE_CAP`]); if the table fills, further sites
//! fold into a shared overflow bucket rather than failing or allocating.

use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

use crate::counters::OpKind;

/// Maximum number of distinct interned call sites.
pub(crate) const SITE_CAP: usize = 512;

/// Site id of the shared overflow bucket.
pub(crate) const SITE_OVERFLOW: u16 = SITE_CAP as u16;

struct SiteSlot {
    /// `&'static Location` address, or 0 when empty.
    key: AtomicUsize,
    ops: [AtomicU64; 3],
    cc_remote: AtomicU64,
    dsm_remote: AtomicU64,
}

impl SiteSlot {
    const fn new() -> Self {
        SiteSlot {
            key: AtomicUsize::new(0),
            ops: [const { AtomicU64::new(0) }; 3],
            cc_remote: AtomicU64::new(0),
            dsm_remote: AtomicU64::new(0),
        }
    }
}

/// `SITE_CAP` probeable slots plus the overflow bucket at index `SITE_CAP`.
static TABLE: [SiteSlot; SITE_CAP + 1] = [const { SiteSlot::new() }; SITE_CAP + 1];

#[inline]
fn hash(key: usize) -> usize {
    // Fibonacci hashing; locations are 8-aligned so multiply first.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> (usize::BITS - 16)
}

/// Interns `loc`, returning its site id (or the overflow bucket).
#[inline]
pub(crate) fn site_id(loc: &'static Location<'static>) -> u16 {
    let key = loc as *const Location<'static> as usize;
    let mut idx = hash(key) % SITE_CAP;
    let mut probes = 0;
    while probes < SITE_CAP {
        let cur = TABLE[idx].key.load(Relaxed);
        if cur == key {
            return idx as u16;
        }
        if cur == 0 {
            match TABLE[idx].key.compare_exchange(0, key, Relaxed, Relaxed) {
                Ok(_) => return idx as u16,
                Err(actual) if actual == key => return idx as u16,
                // Another site claimed the slot first; re-examine it.
                Err(_) => continue,
            }
        }
        idx = (idx + 1) % SITE_CAP;
        probes += 1;
    }
    SITE_OVERFLOW
}

/// Tallies one operation against `site`.
#[inline]
pub(crate) fn record(site: u16, kind: OpKind, cc_remote: bool, dsm_remote: bool) {
    let slot = &TABLE[(site as usize).min(SITE_CAP)];
    slot.ops[kind as usize].fetch_add(1, Relaxed);
    if cc_remote {
        slot.cc_remote.fetch_add(1, Relaxed);
    }
    if dsm_remote {
        slot.dsm_remote.fetch_add(1, Relaxed);
    }
}

/// Renders the site id for ring events: `Some(file:line)` or `None` for
/// the overflow bucket / empty slots.
pub(crate) fn site_name(site: u16) -> Option<String> {
    if site as usize >= SITE_CAP {
        return None;
    }
    let key = TABLE[site as usize].key.load(Relaxed);
    if key == 0 {
        return None;
    }
    // SAFETY: only addresses of `&'static Location` are ever stored.
    let loc = unsafe { &*(key as *const Location<'static>) };
    Some(format!("{}:{}", loc.file(), loc.line()))
}

/// One merged per-location tally.
#[derive(Debug, Clone)]
pub(crate) struct SiteCounts {
    pub location: String,
    pub loads: u64,
    pub stores: u64,
    pub rmws: u64,
    pub cc_remote: u64,
    pub dsm_remote: u64,
}

/// Snapshots the table, merging duplicate locations and dropping
/// all-zero slots. The overflow bucket (if hit) appears with the
/// location `"<overflow>"`.
pub(crate) fn load() -> Vec<SiteCounts> {
    let mut merged: Vec<SiteCounts> = Vec::new();
    for (idx, slot) in TABLE.iter().enumerate() {
        let location = if idx == SITE_CAP {
            "<overflow>".to_string()
        } else {
            match site_name(idx as u16) {
                Some(name) => name,
                None => continue,
            }
        };
        let counts = SiteCounts {
            location,
            loads: slot.ops[0].load(Relaxed),
            stores: slot.ops[1].load(Relaxed),
            rmws: slot.ops[2].load(Relaxed),
            cc_remote: slot.cc_remote.load(Relaxed),
            dsm_remote: slot.dsm_remote.load(Relaxed),
        };
        if counts.loads + counts.stores + counts.rmws == 0 {
            continue;
        }
        match merged.iter_mut().find(|s| s.location == counts.location) {
            Some(existing) => {
                existing.loads += counts.loads;
                existing.stores += counts.stores;
                existing.rmws += counts.rmws;
                existing.cc_remote += counts.cc_remote;
                existing.dsm_remote += counts.dsm_remote;
            }
            None => merged.push(counts),
        }
    }
    merged.sort_by(|a, b| {
        let (ta, tb) = (a.loads + a.stores + a.rmws, b.loads + b.stores + b.rmws);
        tb.cmp(&ta).then_with(|| a.location.cmp(&b.location))
    });
    merged
}

/// Zeroes every tally; interned locations stay registered.
pub(crate) fn reset() {
    for slot in &TABLE {
        for op in &slot.ops {
            op.store(0, Relaxed);
        }
        slot.cc_remote.store(0, Relaxed);
        slot.dsm_remote.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_counts_merge() {
        let _g = crate::testlock::hold();
        reset();
        let loc = Location::caller();
        let id1 = site_id(loc);
        let id2 = site_id(loc);
        assert_eq!(id1, id2);
        record(id1, OpKind::Rmw, true, false);
        record(id1, OpKind::Load, false, true);
        let sites = load();
        let mine = sites
            .iter()
            .find(|s| s.location.contains("sites.rs"))
            .expect("interned site visible in snapshot");
        assert_eq!(mine.rmws, 1);
        assert_eq!(mine.loads, 1);
        assert_eq!(mine.cc_remote, 1);
        assert_eq!(mine.dsm_remote, 1);
        reset();
        assert!(load().iter().all(|s| !s.location.contains("sites.rs")));
    }
}

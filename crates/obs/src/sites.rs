//! Lock-free per-call-site counters.
//!
//! Every instrumented atomic operation carries its `#[track_caller]`
//! `&'static Location`, interned here into a fixed-capacity,
//! linear-probing hash table keyed by the location's address (CAS
//! claims an empty slot; addresses of `'static` locations never move).
//! Codegen may duplicate a `Location` across codegen units, so the
//! snapshot layer merges slots by rendered `file:line` — the table only
//! needs pointer identity to stay lock-free.
//!
//! Capacity is fixed ([`SITE_CAP`]); if the table fills, further sites
//! fold into a shared overflow bucket rather than failing or allocating.

use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

use crate::counters::OpKind;

/// Maximum number of distinct interned call sites.
pub(crate) const SITE_CAP: usize = 512;

/// Site id of the shared overflow bucket.
pub(crate) const SITE_OVERFLOW: u16 = SITE_CAP as u16;

struct SiteSlot {
    /// `&'static Location` address, or 0 when empty.
    key: AtomicUsize,
    ops: [AtomicU64; 3],
    cc_remote: AtomicU64,
    dsm_remote: AtomicU64,
}

impl SiteSlot {
    const fn new() -> Self {
        SiteSlot {
            key: AtomicUsize::new(0),
            ops: [const { AtomicU64::new(0) }; 3],
            cc_remote: AtomicU64::new(0),
            dsm_remote: AtomicU64::new(0),
        }
    }
}

/// `SITE_CAP` probeable slots plus the overflow bucket at index `SITE_CAP`.
static TABLE: [SiteSlot; SITE_CAP + 1] = [const { SiteSlot::new() }; SITE_CAP + 1];

#[inline]
fn hash(key: usize) -> usize {
    // Fibonacci hashing; locations are 8-aligned so multiply first.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> (usize::BITS - 16)
}

/// Interns `loc`, returning its site id (or the overflow bucket).
#[inline]
pub(crate) fn site_id(loc: &'static Location<'static>) -> u16 {
    let key = loc as *const Location<'static> as usize;
    let mut idx = hash(key) % SITE_CAP;
    let mut probes = 0;
    while probes < SITE_CAP {
        let cur = TABLE[idx].key.load(Relaxed);
        if cur == key {
            return idx as u16;
        }
        if cur == 0 {
            match TABLE[idx].key.compare_exchange(0, key, Relaxed, Relaxed) {
                Ok(_) => return idx as u16,
                Err(actual) if actual == key => return idx as u16,
                // Another site claimed the slot first; re-examine it.
                Err(_) => continue,
            }
        }
        idx = (idx + 1) % SITE_CAP;
        probes += 1;
    }
    SITE_OVERFLOW
}

/// Tallies one operation against `site`.
#[inline]
pub(crate) fn record(site: u16, kind: OpKind, cc_remote: bool, dsm_remote: bool) {
    let slot = &TABLE[(site as usize).min(SITE_CAP)];
    slot.ops[kind as usize].fetch_add(1, Relaxed);
    if cc_remote {
        slot.cc_remote.fetch_add(1, Relaxed);
    }
    if dsm_remote {
        slot.dsm_remote.fetch_add(1, Relaxed);
    }
}

/// Renders the site id for ring events: `Some(file:line)` or `None` for
/// the overflow bucket / empty slots.
pub(crate) fn site_name(site: u16) -> Option<String> {
    if site as usize >= SITE_CAP {
        return None;
    }
    let key = TABLE[site as usize].key.load(Relaxed);
    if key == 0 {
        return None;
    }
    // SAFETY: only addresses of `&'static Location` are ever stored.
    let loc = unsafe { &*(key as *const Location<'static>) };
    Some(format!("{}:{}", loc.file(), loc.line()))
}

/// One merged per-location tally.
#[derive(Debug, Clone)]
pub(crate) struct SiteCounts {
    pub location: String,
    pub loads: u64,
    pub stores: u64,
    pub rmws: u64,
    pub cc_remote: u64,
    pub dsm_remote: u64,
}

/// Snapshots the table, merging duplicate locations and dropping
/// all-zero slots. The overflow bucket (if hit) appears with the
/// location `"<overflow>"`.
pub(crate) fn load() -> Vec<SiteCounts> {
    let mut merged: Vec<SiteCounts> = Vec::new();
    for (idx, slot) in TABLE.iter().enumerate() {
        let location = if idx == SITE_CAP {
            "<overflow>".to_string()
        } else {
            match site_name(idx as u16) {
                Some(name) => name,
                None => continue,
            }
        };
        let counts = SiteCounts {
            location,
            loads: slot.ops[0].load(Relaxed),
            stores: slot.ops[1].load(Relaxed),
            rmws: slot.ops[2].load(Relaxed),
            cc_remote: slot.cc_remote.load(Relaxed),
            dsm_remote: slot.dsm_remote.load(Relaxed),
        };
        if counts.loads + counts.stores + counts.rmws == 0 {
            continue;
        }
        match merged.iter_mut().find(|s| s.location == counts.location) {
            Some(existing) => {
                existing.loads += counts.loads;
                existing.stores += counts.stores;
                existing.rmws += counts.rmws;
                existing.cc_remote += counts.cc_remote;
                existing.dsm_remote += counts.dsm_remote;
            }
            None => merged.push(counts),
        }
    }
    merged.sort_by(|a, b| {
        let (ta, tb) = (a.loads + a.stores + a.rmws, b.loads + b.stores + b.rmws);
        tb.cmp(&ta).then_with(|| a.location.cmp(&b.location))
    });
    merged
}

/// Zeroes every tally; interned locations stay registered.
pub(crate) fn reset() {
    for slot in &TABLE {
        for op in &slot.ops {
            op.store(0, Relaxed);
        }
        slot.cc_remote.store(0, Relaxed);
        slot.dsm_remote.store(0, Relaxed);
    }
}

/// Test support: forget every interned location *and* every tally.
///
/// Interning is deliberately permanent in production (keys are
/// `&'static Location` addresses), but the capacity-overflow test must
/// be able to fill the table from a known-empty state without being
/// poisoned by sites other tests interned first. Callers must hold the
/// `testlock`.
#[cfg(test)]
pub(crate) fn clear_for_tests() {
    for slot in &TABLE {
        slot.key.store(0, Relaxed);
        for op in &slot.ops {
            op.store(0, Relaxed);
        }
        slot.cc_remote.store(0, Relaxed);
        slot.dsm_remote.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_counts_merge() {
        let _g = crate::testlock::hold();
        reset();
        let loc = Location::caller();
        let id1 = site_id(loc);
        let id2 = site_id(loc);
        assert_eq!(id1, id2);
        record(id1, OpKind::Rmw, true, false);
        record(id1, OpKind::Load, false, true);
        let sites = load();
        let mine = sites
            .iter()
            .find(|s| s.location.contains("sites.rs"))
            .expect("interned site visible in snapshot");
        assert_eq!(mine.rmws, 1);
        assert_eq!(mine.loads, 1);
        assert_eq!(mine.cc_remote, 1);
        assert_eq!(mine.dsm_remote, 1);
        reset();
        assert!(load().iter().all(|s| !s.location.contains("sites.rs")));
    }

    #[test]
    fn capacity_overflow_degrades_to_shared_bucket() {
        let _g = crate::testlock::hold();
        clear_for_tests();
        // `Location` is `Copy`: each leak materializes a distinct
        // `&'static Location` address, so 2×SITE_CAP of them must
        // exhaust the table no matter how the probe sequence lands.
        let mut ids = Vec::new();
        for _ in 0..SITE_CAP * 2 {
            let loc: &'static Location<'static> = Box::leak(Box::new(*Location::caller()));
            ids.push(site_id(loc));
        }
        assert!(
            ids.contains(&SITE_OVERFLOW),
            "2x capacity distinct locations never overflowed"
        );
        assert!(
            ids.iter().all(|&id| id as usize <= SITE_CAP),
            "site ids must stay within the table plus the overflow bucket"
        );
        // Recording through the overflow id must not panic, and the
        // snapshot must surface it as `<overflow>` so exporters (and
        // kex-lint's drift audit) can report truncation instead of a
        // silently clean inventory.
        record(SITE_OVERFLOW, OpKind::Load, true, false);
        record(SITE_OVERFLOW, OpKind::Rmw, false, true);
        let snap = load();
        let overflow = snap
            .iter()
            .find(|s| s.location == "<overflow>")
            .expect("overflow bucket visible in snapshot");
        assert!(overflow.loads >= 1 && overflow.rmws >= 1);
        assert_eq!(site_name(SITE_OVERFLOW), None);
        // Leave the table empty for whoever runs next under the lock.
        clear_for_tests();
        assert!(load().is_empty());
    }
}

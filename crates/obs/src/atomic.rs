//! Instrumented drop-in replacements for `std::sync::atomic` types.
//!
//! Each type wraps the real std atomic plus a private `Meta` block holding the
//! cost-model state the `kex-sim` memory model tracks per variable:
//!
//! * a **CC holder bitmask** — which processes hold a valid cached copy.
//!   A read is local iff the reader's bit is set (else it is counted
//!   remote and the bit is ORed in); a write or RMW is local iff the
//!   writer is the *sole* holder (else it is counted remote and the mask
//!   collapses to the writer alone). These are exactly
//!   `classify_read`/`classify_write` from `kex-sim`, evaluated at
//!   runtime against real interleavings instead of simulated ones.
//! * a **DSM home** — the static owner assigned via [`assign_home`].
//!   Accesses are local iff the current pid owns the variable; unowned
//!   variables are remote to everyone, matching the simulator's
//!   treatment of global variables.
//!
//! The real operation always executes with the caller's requested
//! `Ordering`, unchanged; bookkeeping is `Relaxed` and synchronizes
//! nothing. Operations by threads outside any span (or with pids beyond
//! [`crate::MAX_PIDS`]) count as CC-remote without touching the mask —
//! except writes, which invalidate every cached copy (the hardware
//! would too).
//!
//! `into_inner` / `get_mut` are unsynchronized accesses through `&mut`
//! and are deliberately not counted: the paper's accounting (§2) only
//! charges *shared* accesses, and `&mut` proves exclusivity.

pub use std::sync::atomic::Ordering;

use std::panic::Location;
use std::sync::atomic::Ordering::Relaxed;

use crate::counters::{self, OpKind};
use crate::sites;
use crate::MAX_PIDS;

/// Sentinel for "no DSM home assigned".
const NO_HOME: u32 = u32::MAX;

/// Per-variable cost-model state carried alongside every instrumented
/// atomic.
#[derive(Debug)]
struct Meta {
    /// CC model: bitmask of pids holding a valid cached copy.
    holders: std::sync::atomic::AtomicU64,
    /// DSM model: owning pid, or [`NO_HOME`].
    home: std::sync::atomic::AtomicU32,
}

impl Meta {
    const fn new() -> Self {
        Meta {
            holders: std::sync::atomic::AtomicU64::new(0),
            home: std::sync::atomic::AtomicU32::new(NO_HOME),
        }
    }

    fn set_home(&self, pid: usize) {
        let home = if pid < MAX_PIDS { pid as u32 } else { NO_HOME };
        self.home.store(home, Relaxed);
    }

    #[inline]
    fn dsm_remote(&self, pid: Option<usize>) -> bool {
        match pid {
            Some(p) => self.home.load(Relaxed) != p as u32,
            None => true,
        }
    }

    /// Classifies and records a read at `loc`.
    #[inline]
    fn on_read(&self, loc: &'static Location<'static>) {
        let pid = counters::current_pid();
        let cc_remote = match pid {
            Some(p) => {
                let bit = 1u64 << p;
                if self.holders.load(Relaxed) & bit != 0 {
                    false
                } else {
                    self.holders.fetch_or(bit, Relaxed);
                    true
                }
            }
            None => true,
        };
        counters::record_op(
            OpKind::Load,
            cc_remote,
            self.dsm_remote(pid),
            sites::site_id(loc),
        );
    }

    /// Classifies and records a write or RMW at `loc`.
    #[inline]
    fn on_write(&self, kind: OpKind, loc: &'static Location<'static>) {
        let pid = counters::current_pid();
        let cc_remote = match pid {
            Some(p) => {
                let bit = 1u64 << p;
                self.holders.swap(bit, Relaxed) != bit
            }
            None => {
                // An untracked writer invalidates every cached copy.
                self.holders.store(0, Relaxed);
                true
            }
        };
        counters::record_op(kind, cc_remote, self.dsm_remote(pid), sites::site_id(loc));
    }
}

/// Declares the DSM home of an instrumented variable.
///
/// The native algorithms call `kex_util::sync::assign_home` from their
/// constructors on every per-process slot (spin flags, queue nodes,
/// handshake words); the facade routes the call here when the `obs`
/// backend is active and to a no-op otherwise. Variables never assigned
/// a home are *global*: remote to every process under DSM, exactly like
/// unowned variables in the simulator.
pub fn assign_home<T: HasHome + ?Sized>(var: &T, home: usize) {
    var.set_home(home);
}

/// Implemented by every instrumented atomic so [`assign_home`] can set
/// the DSM owner without knowing the concrete type.
pub trait HasHome {
    /// Sets the owning pid for the DSM cost model.
    fn set_home(&self, pid: usize);
}

macro_rules! instrumented_common {
    ($name:ident, $ty:ty) => {
        /// Instrumented counterpart of the same-named `std::sync::atomic`
        /// type; see the module docs for the accounting rules.
        pub struct $name {
            inner: std::sync::atomic::$name,
            meta: Meta,
        }

        impl $name {
            /// Creates a new atomic holding `v` (no home, cached nowhere).
            pub const fn new(v: $ty) -> Self {
                $name {
                    inner: std::sync::atomic::$name::new(v),
                    meta: Meta::new(),
                }
            }

            /// Consumes the atomic, returning the contained value
            /// (unsynchronized; not counted).
            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }

            /// Mutable access without synchronization (not counted).
            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            /// Loads the value; counted as a read.
            #[track_caller]
            #[inline]
            pub fn load(&self, order: Ordering) -> $ty {
                self.meta.on_read(Location::caller());
                self.inner.load(order)
            }

            /// Stores `v`; counted as a write.
            #[track_caller]
            #[inline]
            pub fn store(&self, v: $ty, order: Ordering) {
                self.meta.on_write(OpKind::Store, Location::caller());
                self.inner.store(v, order)
            }

            /// Swaps in `v`; counted as an RMW.
            #[track_caller]
            #[inline]
            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                self.meta.on_write(OpKind::Rmw, Location::caller());
                self.inner.swap(v, order)
            }

            /// Compare-and-exchange; counted as one RMW whether it
            /// succeeds or fails (a failed CAS still owns the line).
            #[track_caller]
            #[inline]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.meta.on_write(OpKind::Rmw, Location::caller());
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Weak compare-and-exchange; counted as one RMW.
            #[track_caller]
            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.meta.on_write(OpKind::Rmw, Location::caller());
                self.inner
                    .compare_exchange_weak(current, new, success, failure)
            }

            /// Fetch-and-update; counted as **one** RMW even though the
            /// underlying CAS loop may retry (an estimator
            /// simplification, documented in the crate docs).
            #[track_caller]
            #[inline]
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$ty, $ty>
            where
                F: FnMut($ty) -> Option<$ty>,
            {
                self.meta.on_write(OpKind::Rmw, Location::caller());
                self.inner.fetch_update(set_order, fetch_order, f)
            }
        }

        impl HasHome for $name {
            fn set_home(&self, pid: usize) {
                self.meta.set_home(pid);
            }
        }

        impl From<$ty> for $name {
            fn from(v: $ty) -> Self {
                $name::new(v)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                $name::new(<$ty>::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

macro_rules! instrumented_int_ops {
    ($name:ident, $ty:ty, [$($op:ident),* $(,)?]) => {
        impl $name {
            $(
                #[doc = concat!("`", stringify!($op), "`; counted as an RMW.")]
                #[track_caller]
                #[inline]
                pub fn $op(&self, v: $ty, order: Ordering) -> $ty {
                    self.meta.on_write(OpKind::Rmw, Location::caller());
                    self.inner.$op(v, order)
                }
            )*
        }
    };
}

instrumented_common!(AtomicBool, bool);
instrumented_common!(AtomicU8, u8);
instrumented_common!(AtomicU32, u32);
instrumented_common!(AtomicU64, u64);
instrumented_common!(AtomicI64, i64);
instrumented_common!(AtomicUsize, usize);
instrumented_common!(AtomicIsize, isize);

instrumented_int_ops!(
    AtomicU8,
    u8,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
instrumented_int_ops!(
    AtomicU32,
    u32,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
instrumented_int_ops!(
    AtomicU64,
    u64,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
instrumented_int_ops!(
    AtomicI64,
    i64,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
instrumented_int_ops!(
    AtomicUsize,
    usize,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);
instrumented_int_ops!(
    AtomicIsize,
    isize,
    [fetch_add, fetch_sub, fetch_and, fetch_or, fetch_xor, fetch_max, fetch_min]
);

instrumented_int_ops!(AtomicBool, bool, [fetch_and, fetch_or, fetch_xor]);

/// Instrumented counterpart of `std::sync::atomic::AtomicPtr`.
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
    meta: Meta,
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic pointer (no home, cached nowhere).
    pub const fn new(p: *mut T) -> Self {
        AtomicPtr {
            inner: std::sync::atomic::AtomicPtr::new(p),
            meta: Meta::new(),
        }
    }

    /// Consumes the atomic, returning the contained pointer
    /// (unsynchronized; not counted).
    pub fn into_inner(self) -> *mut T {
        self.inner.into_inner()
    }

    /// Mutable access without synchronization (not counted).
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }

    /// Loads the pointer; counted as a read.
    #[track_caller]
    #[inline]
    pub fn load(&self, order: Ordering) -> *mut T {
        self.meta.on_read(Location::caller());
        self.inner.load(order)
    }

    /// Stores `p`; counted as a write.
    #[track_caller]
    #[inline]
    pub fn store(&self, p: *mut T, order: Ordering) {
        self.meta.on_write(OpKind::Store, Location::caller());
        self.inner.store(p, order)
    }

    /// Swaps in `p`; counted as an RMW.
    #[track_caller]
    #[inline]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        self.meta.on_write(OpKind::Rmw, Location::caller());
        self.inner.swap(p, order)
    }

    /// Compare-and-exchange; counted as one RMW either way.
    #[track_caller]
    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.meta.on_write(OpKind::Rmw, Location::caller());
        self.inner.compare_exchange(current, new, success, failure)
    }

    /// Weak compare-and-exchange; counted as one RMW.
    #[track_caller]
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.meta.on_write(OpKind::Rmw, Location::caller());
        self.inner
            .compare_exchange_weak(current, new, success, failure)
    }

    /// Fetch-and-update; counted as one RMW.
    #[track_caller]
    #[inline]
    pub fn fetch_update<F>(
        &self,
        set_order: Ordering,
        fetch_order: Ordering,
        f: F,
    ) -> Result<*mut T, *mut T>
    where
        F: FnMut(*mut T) -> Option<*mut T>,
    {
        self.meta.on_write(OpKind::Rmw, Location::caller());
        self.inner.fetch_update(set_order, fetch_order, f)
    }
}

impl<T> HasHome for AtomicPtr<T> {
    fn set_home(&self, pid: usize) {
        self.meta.set_home(pid);
    }
}

impl<T> From<*mut T> for AtomicPtr<T> {
    fn from(p: *mut T) -> Self {
        AtomicPtr::new(p)
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        AtomicPtr::new(std::ptr::null_mut())
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, Section};
    use std::sync::atomic::Ordering::SeqCst;

    #[test]
    fn cc_estimator_mirrors_simulator_rules() {
        let _g = crate::testlock::hold();
        crate::reset();
        let x = AtomicUsize::new(0);
        {
            let _s = span(Section::Entry, 1);
            // First read: miss; second: cached.
            x.load(SeqCst);
            x.load(SeqCst);
            // Sole-holder write after own read: mask {1} != {only 1}? The
            // mask is exactly {1}, so the write is local.
            x.store(7, SeqCst);
            // And a second write stays local.
            x.fetch_add(1, SeqCst);
        }
        {
            let _s = span(Section::Entry, 2);
            // Another pid reads: miss, then local.
            x.load(SeqCst);
            x.load(SeqCst);
        }
        {
            let _s = span(Section::Entry, 1);
            // p2 holds a copy too, so p1's write is remote again.
            x.store(0, SeqCst);
        }
        let snap = crate::snapshot();
        let p1 = snap.pid(1).unwrap();
        let p2 = snap.pid(2).unwrap();
        let e1 = &p1.sections[Section::Entry as usize];
        let e2 = &p2.sections[Section::Entry as usize];
        assert_eq!(e1.loads, 2);
        assert_eq!(e1.stores, 2);
        assert_eq!(e1.rmws, 1);
        // p1: 1 read miss + 0 local writes ... store local, fetch_add
        // local, final store remote => 2 CC-remote.
        assert_eq!(e1.cc_remote, 2);
        assert_eq!(e2.cc_remote, 1);
        // No home assigned: everything is DSM-remote.
        assert_eq!(e1.dsm_remote, 5);
        assert_eq!(e2.dsm_remote, 2);
    }

    #[test]
    fn dsm_home_makes_owner_local() {
        let _g = crate::testlock::hold();
        crate::reset();
        let flag = AtomicBool::new(false);
        assign_home(&flag, 4);
        {
            let _s = span(Section::Exit, 4);
            flag.store(true, SeqCst);
            flag.load(SeqCst);
        }
        {
            let _s = span(Section::Exit, 5);
            flag.load(SeqCst);
        }
        let snap = crate::snapshot();
        assert_eq!(
            snap.pid(4).unwrap().sections[Section::Exit as usize].dsm_remote,
            0
        );
        assert_eq!(
            snap.pid(5).unwrap().sections[Section::Exit as usize].dsm_remote,
            1
        );
    }

    #[test]
    fn untracked_ops_count_as_remote_and_invalidate() {
        let _g = crate::testlock::hold();
        crate::reset();
        let x = AtomicU64::new(0);
        {
            let _s = span(Section::Entry, 0);
            x.load(SeqCst); // miss, caches for p0
        }
        // Outside any span: remote, and the write wipes p0's copy.
        x.fetch_add(1, SeqCst);
        {
            let _s = span(Section::Entry, 0);
            x.load(SeqCst); // miss again
        }
        let snap = crate::snapshot();
        let p0 = snap.pid(0).unwrap();
        assert_eq!(p0.sections[Section::Entry as usize].cc_remote, 2);
        let untracked = snap.untracked().unwrap();
        assert_eq!(untracked.sections[Section::Other as usize].rmws, 1);
        assert_eq!(untracked.sections[Section::Other as usize].cc_remote, 1);
    }

    #[test]
    fn non_seqcst_orderings_pass_through_and_are_counted() {
        // The native layer's relaxed hot paths (see kex-core's
        // `ordering` module) run through this backend under `--features
        // obs`: every ordering must be forwarded to the real operation
        // unchanged (no panic, correct result) and instrumented exactly
        // like SeqCst traffic.
        use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
        let _g = crate::testlock::hold();
        crate::reset();
        let x = AtomicUsize::new(1);
        {
            let _s = span(Section::Entry, 3);
            assert_eq!(x.load(Acquire), 1);
            x.store(2, Release);
            x.store(3, Relaxed);
            assert_eq!(x.swap(4, AcqRel), 3);
            assert_eq!(x.fetch_add(1, Relaxed), 4);
            assert_eq!(x.compare_exchange(5, 6, AcqRel, Acquire), Ok(5));
            assert_eq!(x.compare_exchange(0, 9, Release, Relaxed), Err(6));
            assert!(x.fetch_update(AcqRel, Acquire, |v| Some(v + 1)).is_ok());
        }
        assert_eq!(x.load(Relaxed), 7);
        let snap = crate::snapshot();
        let entry = &snap.pid(3).unwrap().sections[Section::Entry as usize];
        assert_eq!(entry.loads, 1);
        assert_eq!(entry.stores, 2);
        // swap + fetch_add + 2 CAS + fetch_update's successful CAS.
        assert_eq!(entry.rmws, 5);
    }

    #[test]
    fn pointer_atomics_are_instrumented() {
        let _g = crate::testlock::hold();
        crate::reset();
        let mut value = 9usize;
        let p = AtomicPtr::new(std::ptr::null_mut());
        {
            let _s = span(Section::Other, 0);
            p.store(&mut value, SeqCst);
            assert_eq!(p.load(SeqCst), &mut value as *mut usize);
            assert!(p
                .compare_exchange(&mut value, std::ptr::null_mut(), SeqCst, SeqCst)
                .is_ok());
        }
        let snap = crate::snapshot();
        let other = &snap.pid(0).unwrap().sections[Section::Other as usize];
        assert_eq!(other.loads, 1);
        assert_eq!(other.stores, 1);
        assert_eq!(other.rmws, 1);
    }
}

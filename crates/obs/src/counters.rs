//! The global counter registry, section spans, and attribution context.
//!
//! Layout: a static array of [`MAX_PIDS`](crate::MAX_PIDS) + 1
//! cache-line-aligned per-process blocks (the extra slot is the shared
//! *untracked* bucket for operations outside any span or by pids beyond
//! the limit). Each block holds per-section counters, per-section
//! latency histograms, and the process's event ring. In the intended
//! regime — one thread per process id, as every harness in this repo
//! runs — each block has a single logical writer, so the `Relaxed`
//! fetch-adds are uncontended and never bounce cache lines between
//! processes (the blocks are 128-byte aligned for exactly the reason
//! `kex_util::CachePadded` exists).
//!
//! Attribution is a thread-local `(pid, section)` cell maintained by
//! RAII [`SpanGuard`]s. Spans nest (e.g. `FastPathKex` entry opens the
//! underlying `TreeKex` entry, which opens a chain entry): a nested span
//! of the *same* `(pid, section)` is transparent — it restores its
//! predecessor on drop and records neither latency nor completion — so
//! "entry section latency" always means the outermost entry span.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use crate::hist::Hist;
use crate::ring::{RawEvent, Ring};
use crate::MAX_PIDS;

/// Protocol section an operation is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Section {
    /// The entry section (acquire path) of a protocol.
    Entry = 0,
    /// The exit section (release path) of a protocol.
    Exit = 1,
    /// Inside the critical section; drives the occupancy gauge.
    Cs = 2,
    /// Instrumented work outside any annotated section.
    Other = 3,
    /// A whole service-layer store operation (route + admission +
    /// object op + journal); the protocol sections it contains nest
    /// transparently inside it. Opened by `kex-store`.
    Store = 4,
}

/// Number of [`Section`] variants.
pub(crate) const N_SECTIONS: usize = 5;

impl Section {
    /// All sections, in discriminant order.
    pub const ALL: [Section; N_SECTIONS] = [
        Section::Entry,
        Section::Exit,
        Section::Cs,
        Section::Other,
        Section::Store,
    ];

    /// Human-readable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            Section::Entry => "entry",
            Section::Exit => "exit",
            Section::Cs => "cs",
            Section::Other => "other",
            Section::Store => "store",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Section {
        Section::ALL[(v as usize).min(N_SECTIONS - 1)]
    }
}

/// Kind of an instrumented atomic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum OpKind {
    Load = 0,
    Store = 1,
    Rmw = 2,
}

/// Thread-local attribution: which `(pid, section)` owns the
/// operations this thread performs right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ctx {
    /// Pid slot index (0..=MAX_PIDS; MAX_PIDS = untracked).
    slot: u16,
    section: u8,
}

const UNTRACKED: u16 = MAX_PIDS as u16;
const AMBIENT: Ctx = Ctx {
    slot: UNTRACKED,
    section: Section::Other as u8,
};

thread_local! {
    static CURRENT: Cell<Ctx> = const { Cell::new(AMBIENT) };
}

/// Counters for one `(process, section)` pair.
pub(crate) struct SectionCounters {
    /// Operation counts indexed by [`OpKind`].
    pub ops: [AtomicU64; 3],
    /// Estimated remote references under the CC model.
    pub cc_remote: AtomicU64,
    /// Estimated remote references under the DSM model.
    pub dsm_remote: AtomicU64,
    /// Spin-loop hint iterations.
    pub spins: AtomicU64,
    /// Completed top-level spans of this section.
    pub spans: AtomicU64,
    /// Total nanoseconds across completed top-level spans.
    pub span_ns: AtomicU64,
}

impl SectionCounters {
    const fn new() -> Self {
        SectionCounters {
            ops: [const { AtomicU64::new(0) }; 3],
            cc_remote: AtomicU64::new(0),
            dsm_remote: AtomicU64::new(0),
            spins: AtomicU64::new(0),
            spans: AtomicU64::new(0),
            span_ns: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for op in &self.ops {
            op.store(0, Relaxed);
        }
        self.cc_remote.store(0, Relaxed);
        self.dsm_remote.store(0, Relaxed);
        self.spins.store(0, Relaxed);
        self.spans.store(0, Relaxed);
        self.span_ns.store(0, Relaxed);
    }
}

/// One process's block: 128-byte aligned so neighbouring processes
/// never share a cache line.
#[repr(align(128))]
pub(crate) struct PerPid {
    pub sec: [SectionCounters; N_SECTIONS],
    pub hist: [Hist; N_SECTIONS],
    pub ring: Ring,
}

impl PerPid {
    const fn new() -> Self {
        PerPid {
            sec: [const { SectionCounters::new() }; N_SECTIONS],
            hist: [const { Hist::new() }; N_SECTIONS],
            ring: Ring::new(),
        }
    }
}

/// MAX_PIDS tracked blocks plus the untracked bucket at index MAX_PIDS.
static REGISTRY: [PerPid; MAX_PIDS + 1] = [const { PerPid::new() }; MAX_PIDS + 1];

/// Critical-section occupancy gauge (current and high-water number of
/// live top-level [`Section::Cs`] spans).
struct Gauge {
    cur: AtomicI64,
    max: AtomicI64,
}

static OCCUPANCY: Gauge = Gauge {
    cur: AtomicI64::new(0),
    max: AtomicI64::new(0),
};

#[inline]
fn pid_slot(pid: usize) -> u16 {
    if pid < MAX_PIDS {
        pid as u16
    } else {
        UNTRACKED
    }
}

/// The pid the current thread attributes operations to, if a span with
/// a tracked pid is live.
#[inline]
pub(crate) fn current_pid() -> Option<usize> {
    let slot = CURRENT.with(|c| c.get().slot);
    (slot != UNTRACKED).then_some(slot as usize)
}

/// Records one atomic operation against the current context.
#[inline]
pub(crate) fn record_op(kind: OpKind, cc_remote: bool, dsm_remote: bool, site: u16) {
    let ctx = CURRENT.with(|c| c.get());
    let block = &REGISTRY[ctx.slot as usize];
    let sc = &block.sec[ctx.section as usize];
    sc.ops[kind as usize].fetch_add(1, Relaxed);
    if cc_remote {
        sc.cc_remote.fetch_add(1, Relaxed);
    }
    if dsm_remote {
        sc.dsm_remote.fetch_add(1, Relaxed);
    }
    crate::sites::record(site, kind, cc_remote, dsm_remote);
    block
        .ring
        .push_op(ctx.section, kind as u8, cc_remote, dsm_remote, site);
}

/// Records one spin-loop iteration against the current context.
#[inline]
pub(crate) fn record_spin() {
    let ctx = CURRENT.with(|c| c.get());
    REGISTRY[ctx.slot as usize].sec[ctx.section as usize]
        .spins
        .fetch_add(1, Relaxed);
}

/// RAII guard returned by [`span`]; closes the span on drop.
///
/// Dropping restores the previous `(pid, section)` context, and — for
/// the outermost span of its `(pid, section)` — records the section
/// latency into the histogram, bumps the completion counter, and (for
/// [`Section::Cs`]) decrements the occupancy gauge.
#[derive(Debug)]
#[must_use = "a span guard attributes operations only while it is live"]
pub struct SpanGuard {
    prev: Ctx,
    me: Ctx,
    start: Instant,
    top_level: bool,
}

/// Opens a section span attributing this thread's instrumented
/// operations to `(pid, section)` until the returned guard drops.
///
/// Pids at or above [`MAX_PIDS`](crate::MAX_PIDS) fold into the shared
/// untracked bucket. Re-opening the section already live on this thread
/// (a nested span of the same `(pid, section)`) is transparent: it
/// neither double-counts completions nor re-records latency.
pub fn span(section: Section, pid: usize) -> SpanGuard {
    let me = Ctx {
        slot: pid_slot(pid),
        section: section as u8,
    };
    let prev = CURRENT.with(|c| c.replace(me));
    let top_level = prev != me;
    if top_level {
        let block = &REGISTRY[me.slot as usize];
        block.ring.push_span(me.section, true);
        if section == Section::Cs {
            let cur = OCCUPANCY.cur.fetch_add(1, Relaxed) + 1;
            OCCUPANCY.max.fetch_max(cur, Relaxed);
        }
    }
    SpanGuard {
        prev,
        me,
        start: Instant::now(),
        top_level,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
        if !self.top_level {
            return;
        }
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let block = &REGISTRY[self.me.slot as usize];
        let sc = &block.sec[self.me.section as usize];
        sc.spans.fetch_add(1, Relaxed);
        sc.span_ns.fetch_add(ns, Relaxed);
        block.hist[self.me.section as usize].record(ns);
        block.ring.push_span(self.me.section, false);
        if self.me.section == Section::Cs as u8 {
            OCCUPANCY.cur.fetch_sub(1, Relaxed);
        }
    }
}

/// Raw access for the snapshot layer.
pub(crate) struct PidView {
    pub sec: [SectionView; N_SECTIONS],
    pub hist: [[u64; crate::hist::BUCKETS]; N_SECTIONS],
    pub events: Vec<RawEvent>,
}

/// Loaded values of one [`SectionCounters`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SectionView {
    pub ops: [u64; 3],
    pub cc_remote: u64,
    pub dsm_remote: u64,
    pub spins: u64,
    pub spans: u64,
    pub span_ns: u64,
}

impl SectionView {
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }
}

pub(crate) fn load_pid(slot: usize) -> PidView {
    let block = &REGISTRY[slot];
    let mut sec = [SectionView::default(); N_SECTIONS];
    for (view, counters) in sec.iter_mut().zip(&block.sec) {
        *view = SectionView {
            ops: [
                counters.ops[0].load(Relaxed),
                counters.ops[1].load(Relaxed),
                counters.ops[2].load(Relaxed),
            ],
            cc_remote: counters.cc_remote.load(Relaxed),
            dsm_remote: counters.dsm_remote.load(Relaxed),
            spins: counters.spins.load(Relaxed),
            spans: counters.spans.load(Relaxed),
            span_ns: counters.span_ns.load(Relaxed),
        };
    }
    let mut hist = [[0u64; crate::hist::BUCKETS]; N_SECTIONS];
    for (out, h) in hist.iter_mut().zip(&block.hist) {
        *out = h.load();
    }
    PidView {
        sec,
        hist,
        events: block.ring.load(),
    }
}

pub(crate) fn load_occupancy() -> (i64, i64) {
    (OCCUPANCY.cur.load(Relaxed), OCCUPANCY.max.load(Relaxed))
}

pub(crate) fn reset() {
    for block in &REGISTRY {
        for sc in &block.sec {
            sc.reset();
        }
        for h in &block.hist {
            h.reset();
        }
        block.ring.reset();
    }
    // Keep `cur` (live spans must still balance); restart the high-water
    // mark from the present occupancy.
    let cur = OCCUPANCY.cur.load(Relaxed);
    OCCUPANCY.max.store(cur, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_attribute_and_nest() {
        let _g = crate::testlock::hold();
        crate::reset();
        {
            let _e = span(Section::Entry, 3);
            record_spin();
            {
                // Nested same-section span: transparent.
                let _inner = span(Section::Entry, 3);
                record_spin();
            }
            {
                let _cs = span(Section::Cs, 3);
                record_spin();
            }
            record_spin();
        }
        let view = load_pid(3);
        assert_eq!(view.sec[Section::Entry as usize].spins, 3);
        assert_eq!(view.sec[Section::Entry as usize].spans, 1);
        assert_eq!(view.sec[Section::Cs as usize].spins, 1);
        assert_eq!(view.sec[Section::Cs as usize].spans, 1);
        let (_, max) = load_occupancy();
        assert_eq!(max, 1);
        // Entry histogram recorded exactly the one top-level span.
        let entry_hist: u64 = view.hist[Section::Entry as usize].iter().sum();
        assert_eq!(entry_hist, 1);
        // Ring: entry open, cs open, cs close, entry close + spins absent
        // (spins are counters, not events).
        let spans: Vec<_> = view.events.iter().filter(|e| e.kind == 3).collect();
        assert_eq!(spans.len(), 4);
        assert!(spans[0].is_span_open() && spans[0].section == Section::Entry as u8);
        assert!(!spans[3].is_span_open() && spans[3].section == Section::Entry as u8);
    }

    #[test]
    fn untracked_pid_folds_into_shared_bucket() {
        let _g = crate::testlock::hold();
        crate::reset();
        {
            let _s = span(Section::Exit, MAX_PIDS + 7);
            record_spin();
        }
        assert_eq!(load_pid(MAX_PIDS).sec[Section::Exit as usize].spins, 1);
        assert_eq!(current_pid(), None);
    }
}

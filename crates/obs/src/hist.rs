//! Fixed-bucket, allocation-free latency histograms.
//!
//! Buckets are powers of two nanoseconds: bucket `i` counts durations in
//! `[2^i, 2^(i+1))` ns (bucket 0 also absorbs 0 ns). With
//! [`BUCKETS`] = 40 the top bucket starts at `2^39` ns ≈ 9.2 minutes,
//! far beyond any section latency worth distinguishing; longer
//! durations saturate into it. Recording is one `Relaxed` fetch-add.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of power-of-two buckets per histogram.
pub(crate) const BUCKETS: usize = 40;

/// One histogram: a fixed array of `Relaxed` counters.
pub(crate) struct Hist {
    counts: [AtomicU64; BUCKETS],
}

impl Hist {
    pub(crate) const fn new() -> Self {
        Hist {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Index of the bucket covering `ns`.
    #[inline]
    pub(crate) fn bucket_of(ns: u64) -> usize {
        (63 - ns.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Lower bound (inclusive) of bucket `i` in nanoseconds.
    #[inline]
    pub(crate) fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    #[inline]
    pub(crate) fn record(&self, ns: u64) {
        self.counts[Self::bucket_of(ns)].fetch_add(1, Relaxed);
    }

    pub(crate) fn load(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, c) in out.iter_mut().zip(&self.counts) {
            *slot = c.load(Relaxed);
        }
        out
    }

    pub(crate) fn reset(&self) {
        for c in &self.counts {
            c.store(0, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 0);
        assert_eq!(Hist::bucket_of(2), 1);
        assert_eq!(Hist::bucket_of(3), 1);
        assert_eq!(Hist::bucket_of(4), 2);
        assert_eq!(Hist::bucket_of(1024), 10);
        assert_eq!(Hist::bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(Hist::bucket_floor(0), 0);
        assert_eq!(Hist::bucket_floor(10), 1024);
    }

    #[test]
    fn record_and_read_back() {
        let h = Hist::new();
        h.record(0);
        h.record(5);
        h.record(5);
        h.record(1 << 20);
        let counts = h.load();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[2], 2);
        assert_eq!(counts[20], 1);
        assert_eq!(counts.iter().sum::<u64>(), 4);
        h.reset();
        assert_eq!(h.load().iter().sum::<u64>(), 0);
    }
}

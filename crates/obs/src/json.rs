//! A minimal JSON value model and writer, so snapshots can be exported
//! without any external serialization crate (the workspace builds fully
//! offline).
//!
//! Only what the exporters need: construction via [`Json`] variants and
//! the [`Json::obj`]/[`Json::arr`] helpers, rendering via `Display`
//! (compact) or [`Json::to_string_pretty`], and [`write_pretty`] for
//! writing a file. Numbers keep their integer-ness: `u64`/`i64` render
//! without a decimal point, `f64` renders via Rust's shortest-round-trip
//! formatting (NaN and infinities degrade to `null`, which JSON
//! requires).

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    let s = v.to_string();
                    out.push_str(&s);
                    // `{}` on a whole f64 prints no decimal point; keep
                    // the value typed as a float for consumers.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    item.render(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    Json::Str(key.clone()).render(out, indent + 1, pretty);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.render(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out, 0, false);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Writes `value` to `path`, pretty-printed.
pub fn write_pretty(path: &Path, value: &Json) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(value.to_string_pretty().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", "cc-chain".into()),
            ("n", Json::U64(8)),
            ("mean", Json::F64(2.5)),
            ("whole", Json::F64(3.0)),
            ("ok", Json::Bool(true)),
            ("bound", Json::Null),
            ("xs", Json::arr(vec![Json::I64(-1), Json::U64(2)])),
            ("esc", "a\"b\\c\nd".into()),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"cc-chain","n":8,"mean":2.5,"whole":3.0,"ok":true,"bound":null,"xs":[-1,2],"esc":"a\"b\\c\nd"}"#
        );
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"name\": \"cc-chain\""));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::arr(vec![]).to_string(), "[]");
        assert_eq!(Json::obj(vec![]).to_string_pretty(), "{}\n");
    }
}

//! A minimal JSON value model and writer, so snapshots can be exported
//! without any external serialization crate (the workspace builds fully
//! offline).
//!
//! Only what the exporters need: construction via [`Json`] variants and
//! the [`Json::obj`]/[`Json::arr`] helpers, rendering via `Display`
//! (compact) or [`Json::to_string_pretty`], [`write_pretty`] for
//! writing a file, and [`parse`]/[`read_file`] plus the
//! [`Json::get`]-family accessors so benchmark binaries can reload a
//! previously written document (e.g. `contend --baseline`). Numbers keep
//! their integer-ness: `u64`/`i64` render without a decimal point, `f64`
//! renders via Rust's shortest-round-trip formatting (NaN and infinities
//! degrade to `null`, which JSON requires).

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0, true);
        out.push('\n');
        out
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `f64` (from any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value as `u64` (whole non-negative numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn render(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    let s = v.to_string();
                    out.push_str(&s);
                    // `{}` on a whole f64 prints no decimal point; keep
                    // the value typed as a float for consumers.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    item.render(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    Json::Str(key.clone()).render(out, indent + 1, pretty);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.render(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out, 0, false);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Writes `value` to `path`, pretty-printed.
pub fn write_pretty(path: &Path, value: &Json) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(value.to_string_pretty().as_bytes())
}

/// A [`parse`] failure: byte offset and a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (the subset this module writes: no `\uXXXX`
/// surrogate-pair decoding beyond the BMP is attempted — escapes decode
/// to their code point, which round-trips everything [`Json`] emits).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Reads and parses a JSON file.
pub fn read_file(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.err(format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", "cc-chain".into()),
            ("n", Json::U64(8)),
            ("mean", Json::F64(2.5)),
            ("whole", Json::F64(3.0)),
            ("ok", Json::Bool(true)),
            ("bound", Json::Null),
            ("xs", Json::arr(vec![Json::I64(-1), Json::U64(2)])),
            ("esc", "a\"b\\c\nd".into()),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"cc-chain","n":8,"mean":2.5,"whole":3.0,"ok":true,"bound":null,"xs":[-1,2],"esc":"a\"b\\c\nd"}"#
        );
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"name\": \"cc-chain\""));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::arr(vec![]).to_string(), "[]");
        assert_eq!(Json::obj(vec![]).to_string_pretty(), "{}\n");
    }

    #[test]
    fn parse_round_trips_what_we_write() {
        let v = Json::obj(vec![
            ("name", "cc-chain".into()),
            ("n", Json::U64(8)),
            ("neg", Json::I64(-3)),
            ("mean", Json::F64(2.5)),
            ("whole", Json::F64(3.0)),
            ("ok", Json::Bool(true)),
            ("bound", Json::Null),
            ("xs", Json::arr(vec![Json::I64(-1), Json::U64(2)])),
            ("esc", "a\"b\\c\nd\u{1}".into()),
            ("empty_obj", Json::obj(vec![])),
            ("empty_arr", Json::arr(vec![])),
        ]);
        let compact = parse(&v.to_string()).unwrap();
        let pretty = parse(&v.to_string_pretty()).unwrap();
        // I64(-1) reparses as I64(-1), U64 stays U64, F64(3.0) comes
        // back as F64 thanks to the forced `.0`.
        assert_eq!(compact, v);
        assert_eq!(pretty, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        let err = parse("nope").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = parse(r#"{"a": {"b": [1, 2.5, "x"]}, "t": 7}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_arr().unwrap().len(), 3);
        assert_eq!(arr.as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(arr.as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(arr.as_arr().unwrap()[2].as_str(), Some("x"));
        assert_eq!(doc.get("t").unwrap().as_f64(), Some(7.0));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }
}

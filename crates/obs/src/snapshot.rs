//! Point-in-time copies of every counter, and their JSON rendering.
//!
//! [`snapshot`] walks the registry with `Relaxed` loads. It is exact
//! when taken at a quiescent point (after joining worker threads, the
//! only way the exporters use it) and merely approximate when taken
//! concurrently — each individual counter is still a real value that
//! was current at some moment, but cross-counter sums may be torn.

use crate::counters::{self, Section, SectionView, N_SECTIONS};
use crate::hist::{Hist, BUCKETS};
use crate::json::Json;
use crate::{sites, MAX_PIDS};

/// A point-in-time copy of all observability state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Per-process data, for every pid slot with any activity. The
    /// untracked bucket, if active, appears with `pid == None`.
    pub per_pid: Vec<PidSnapshot>,
    /// Per-call-site tallies, heaviest site first.
    pub sites: Vec<SiteSnapshot>,
    /// Critical-section occupancy gauge.
    pub occupancy: OccupancySnapshot,
}

/// One process's counters (or the untracked bucket when `pid` is `None`).
#[derive(Debug, Clone)]
pub struct PidSnapshot {
    /// Process id, or `None` for the untracked bucket.
    pub pid: Option<usize>,
    /// Per-section counters, indexed by `Section as usize`.
    pub sections: [SectionTotals; N_SECTIONS],
    /// Per-section latency histograms, indexed by `Section as usize`.
    pub hists: [HistSnapshot; N_SECTIONS],
    /// The retained tail of the process's event ring, oldest first.
    pub events: Vec<EventSnapshot>,
}

/// Counter totals for one `(process, section)` pair — or a sum of such
/// pairs (see [`Snapshot::section_totals`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SectionTotals {
    /// Atomic loads.
    pub loads: u64,
    /// Atomic stores.
    pub stores: u64,
    /// Atomic read-modify-writes (swap/CAS/fetch-ops).
    pub rmws: u64,
    /// Estimated remote references under the CC model.
    pub cc_remote: u64,
    /// Estimated remote references under the DSM model.
    pub dsm_remote: u64,
    /// Spin-loop hint iterations.
    pub spins: u64,
    /// Completed top-level spans.
    pub spans: u64,
    /// Total nanoseconds across completed top-level spans.
    pub span_ns: u64,
}

impl SectionTotals {
    /// All atomic operations (loads + stores + RMWs).
    pub fn ops(&self) -> u64 {
        self.loads + self.stores + self.rmws
    }

    fn add(&mut self, other: &SectionTotals) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.rmws += other.rmws;
        self.cc_remote += other.cc_remote;
        self.dsm_remote += other.dsm_remote;
        self.spins += other.spins;
        self.spans += other.spans;
        self.span_ns += other.span_ns;
    }

    fn from_view(view: &SectionView) -> SectionTotals {
        SectionTotals {
            loads: view.ops[0],
            stores: view.ops[1],
            rmws: view.ops[2],
            cc_remote: view.cc_remote,
            dsm_remote: view.dsm_remote,
            spins: view.spins,
            spans: view.spans,
            span_ns: view.span_ns,
        }
    }

    fn is_zero(&self) -> bool {
        self.ops() + self.spins + self.spans == 0
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("loads", Json::U64(self.loads)),
            ("stores", Json::U64(self.stores)),
            ("rmws", Json::U64(self.rmws)),
            ("cc_remote", Json::U64(self.cc_remote)),
            ("dsm_remote", Json::U64(self.dsm_remote)),
            ("spins", Json::U64(self.spins)),
            ("spans", Json::U64(self.spans)),
            ("span_ns", Json::U64(self.span_ns)),
        ])
    }
}

/// A latency histogram copy with percentile estimation.
#[derive(Debug, Clone, Default)]
pub struct HistSnapshot {
    /// `(bucket_floor_ns, count)` for every non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    fn from_counts(counts: &[u64; BUCKETS]) -> HistSnapshot {
        HistSnapshot {
            buckets: counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (Hist::bucket_floor(i), c))
                .collect(),
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|&(_, c)| c).sum()
    }

    /// Lower bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), or `None` when empty.
    pub fn quantile_floor(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(floor, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(floor);
            }
        }
        self.buckets.last().map(|&(floor, _)| floor)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::U64(self.count())),
            (
                "p50_ns_floor",
                self.quantile_floor(0.50).map_or(Json::Null, Json::U64),
            ),
            (
                "p99_ns_floor",
                self.quantile_floor(0.99).map_or(Json::Null, Json::U64),
            ),
            (
                "buckets",
                Json::arr(
                    self.buckets
                        .iter()
                        .map(|&(floor, c)| Json::arr(vec![Json::U64(floor), Json::U64(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One decoded ring event.
#[derive(Debug, Clone)]
pub struct EventSnapshot {
    /// Per-process sequence number (monotone within a pid).
    pub seq: u64,
    /// Section the event was attributed to.
    pub section: Section,
    /// `"load"`, `"store"`, `"rmw"`, `"span-open"` or `"span-close"`.
    pub kind: &'static str,
    /// Rendered `file:line` of the call site (ops only).
    pub site: Option<String>,
    /// CC-remote flag (ops only; always `false` for span markers).
    pub cc_remote: bool,
    /// DSM-remote flag (ops only).
    pub dsm_remote: bool,
}

/// Per-call-site tallies.
#[derive(Debug, Clone)]
pub struct SiteSnapshot {
    /// Rendered `file:line` (or `"<overflow>"`).
    pub location: String,
    /// Atomic loads at this site.
    pub loads: u64,
    /// Atomic stores at this site.
    pub stores: u64,
    /// Atomic RMWs at this site.
    pub rmws: u64,
    /// Estimated CC-remote references at this site.
    pub cc_remote: u64,
    /// Estimated DSM-remote references at this site.
    pub dsm_remote: u64,
}

/// Occupancy gauge values.
#[derive(Debug, Clone, Copy)]
pub struct OccupancySnapshot {
    /// Live top-level critical-section spans right now.
    pub current: i64,
    /// High-water mark since the last [`crate::reset`].
    pub max: i64,
}

impl Snapshot {
    /// The snapshot for a tracked `pid`, if it had any activity.
    pub fn pid(&self, pid: usize) -> Option<&PidSnapshot> {
        self.per_pid.iter().find(|p| p.pid == Some(pid))
    }

    /// The untracked bucket, if it had any activity.
    pub fn untracked(&self) -> Option<&PidSnapshot> {
        self.per_pid.iter().find(|p| p.pid.is_none())
    }

    /// Sums `section`'s counters across all *tracked* pids (the
    /// untracked bucket is excluded — per-acquisition estimates should
    /// not be polluted by harness threads outside any span).
    pub fn section_totals(&self, section: Section) -> SectionTotals {
        let mut out = SectionTotals::default();
        for p in &self.per_pid {
            if p.pid.is_some() {
                out.add(&p.sections[section as usize]);
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        let per_pid = self
            .per_pid
            .iter()
            .map(|p| {
                let sections = Section::ALL
                    .iter()
                    .filter(|&&s| {
                        !p.sections[s as usize].is_zero() || p.hists[s as usize].count() > 0
                    })
                    .map(|&s| {
                        (
                            s.label().to_string(),
                            Json::Obj(vec![
                                ("counters".to_string(), p.sections[s as usize].to_json()),
                                ("latency".to_string(), p.hists[s as usize].to_json()),
                            ]),
                        )
                    })
                    .collect();
                Json::obj(vec![
                    (
                        "pid",
                        p.pid
                            .map_or(Json::Str("untracked".into()), |v| Json::U64(v as u64)),
                    ),
                    ("sections", Json::Obj(sections)),
                    (
                        "last_events",
                        Json::arr(
                            p.events
                                .iter()
                                .map(|e| {
                                    Json::obj(vec![
                                        ("seq", Json::U64(e.seq)),
                                        ("section", e.section.label().into()),
                                        ("kind", e.kind.into()),
                                        ("site", e.site.clone().map_or(Json::Null, Json::Str)),
                                        ("cc_remote", Json::Bool(e.cc_remote)),
                                        ("dsm_remote", Json::Bool(e.dsm_remote)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let sites = self
            .sites
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("location", s.location.clone().into()),
                    ("loads", Json::U64(s.loads)),
                    ("stores", Json::U64(s.stores)),
                    ("rmws", Json::U64(s.rmws)),
                    ("cc_remote", Json::U64(s.cc_remote)),
                    ("dsm_remote", Json::U64(s.dsm_remote)),
                ])
            })
            .collect();
        Json::obj(vec![
            (
                "occupancy",
                Json::obj(vec![
                    ("current", Json::I64(self.occupancy.current)),
                    ("max", Json::I64(self.occupancy.max)),
                ]),
            ),
            ("per_pid", Json::arr(per_pid)),
            ("sites", Json::arr(sites)),
        ])
    }
}

/// Takes a snapshot of every counter; see the module docs for the
/// consistency caveat.
pub fn snapshot() -> Snapshot {
    let mut per_pid = Vec::new();
    for slot in 0..=MAX_PIDS {
        let view = counters::load_pid(slot);
        let active = view
            .sec
            .iter()
            .any(|s| s.total_ops() + s.spins + s.spans > 0)
            || !view.events.is_empty();
        if !active {
            continue;
        }
        let mut sections = [SectionTotals::default(); N_SECTIONS];
        let mut hists: [HistSnapshot; N_SECTIONS] = Default::default();
        for i in 0..N_SECTIONS {
            sections[i] = SectionTotals::from_view(&view.sec[i]);
            hists[i] = HistSnapshot::from_counts(&view.hist[i]);
        }
        let events = view
            .events
            .iter()
            .map(|e| EventSnapshot {
                seq: e.seq,
                section: Section::from_u8(e.section),
                kind: match e.kind {
                    0 => "load",
                    1 => "store",
                    2 => "rmw",
                    _ if e.is_span_open() => "span-open",
                    _ => "span-close",
                },
                site: if e.kind < 3 {
                    crate::sites::site_name(e.site)
                } else {
                    None
                },
                cc_remote: e.kind < 3 && e.cc_remote,
                dsm_remote: e.kind < 3 && e.dsm_remote,
            })
            .collect();
        per_pid.push(PidSnapshot {
            pid: (slot < MAX_PIDS).then_some(slot),
            sections,
            hists,
            events,
        });
    }
    let sites = sites::load()
        .into_iter()
        .map(|s| SiteSnapshot {
            location: s.location,
            loads: s.loads,
            stores: s.stores,
            rmws: s.rmws,
            cc_remote: s.cc_remote,
            dsm_remote: s.dsm_remote,
        })
        .collect();
    let (current, max) = counters::load_occupancy();
    Snapshot {
        per_pid,
        sites,
        occupancy: OccupancySnapshot { current, max },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, Section};

    #[test]
    fn snapshot_round_trips_to_json() {
        let _g = crate::testlock::hold();
        crate::reset();
        let x = crate::atomic::AtomicUsize::new(0);
        {
            let _s = span(Section::Entry, 0);
            x.fetch_add(1, crate::atomic::Ordering::SeqCst);
        }
        let snap = snapshot();
        assert_eq!(snap.section_totals(Section::Entry).rmws, 1);
        assert_eq!(snap.section_totals(Section::Entry).spans, 1);
        let json = snap.to_json().to_string();
        assert!(json.contains("\"rmws\":1"));
        assert!(
            json.contains("snapshot.rs"),
            "site location present: {json}"
        );
        assert!(json.contains("\"occupancy\""));
    }

    #[test]
    fn quantiles_on_synthetic_hist() {
        let h = HistSnapshot {
            buckets: vec![(0, 50), (1024, 49), (4096, 1)],
        };
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_floor(0.0), Some(0));
        assert_eq!(h.quantile_floor(0.5), Some(0));
        assert_eq!(h.quantile_floor(0.51), Some(1024));
        assert_eq!(h.quantile_floor(0.99), Some(1024));
        assert_eq!(h.quantile_floor(1.0), Some(4096));
        assert_eq!(HistSnapshot::default().quantile_floor(0.5), None);
    }
}

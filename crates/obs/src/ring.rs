//! Bounded per-process event rings for post-mortem traces.
//!
//! Each tracked process id owns a fixed ring of [`RING_LEN`] packed
//! 64-bit event words; a monotonically increasing cursor picks the slot,
//! so the ring always holds the *last* `RING_LEN` events of that
//! process. Writing is two `Relaxed` atomic operations (cursor
//! fetch-add, slot store) — no allocation, no locks. When a thread
//! crashes (or wedges) inside a section, the tail of its ring shows the
//! last operations and span markers it executed — e.g. a `span-open` of
//! the critical section with no matching `span-close` is the native
//! analogue of the simulator's crash-in-CS traces.
//!
//! ## Word layout
//!
//! | bits    | field                                                   |
//! |---------|---------------------------------------------------------|
//! | 0–1     | section (entry / exit / cs / other)                     |
//! | 2–3     | kind (load / store / rmw / span marker)                 |
//! | 4       | CC-remote flag (for span markers: 1 = open, 0 = close)  |
//! | 5       | DSM-remote flag                                         |
//! | 6–21    | site id (index into the site table; markers store 0)    |
//! | 22      | valid flag (distinguishes real events from empty slots) |
//! | 23–63   | sequence number (wraps at 2^41)                         |

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Events retained per process.
pub(crate) const RING_LEN: usize = 128;

const KIND_SPAN: u64 = 3;
const SEQ_SHIFT: u32 = 23;
const VALID: u64 = 1 << 22;

/// A decoded ring event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RawEvent {
    pub seq: u64,
    pub section: u8,
    /// 0 load, 1 store, 2 rmw, 3 span marker.
    pub kind: u8,
    pub cc_remote: bool,
    pub dsm_remote: bool,
    pub site: u16,
}

impl RawEvent {
    /// For span markers the CC flag doubles as the open/close bit.
    pub fn is_span_open(&self) -> bool {
        self.kind as u64 == KIND_SPAN && self.cc_remote
    }
}

pub(crate) struct Ring {
    slots: [AtomicU64; RING_LEN],
    cursor: AtomicU64,
}

impl Ring {
    pub(crate) const fn new() -> Self {
        Ring {
            slots: [const { AtomicU64::new(0) }; RING_LEN],
            cursor: AtomicU64::new(0),
        }
    }

    #[inline]
    fn push_word(&self, payload: u64) {
        let seq = self.cursor.fetch_add(1, Relaxed);
        let word = payload | VALID | (seq << SEQ_SHIFT);
        self.slots[seq as usize % RING_LEN].store(word, Relaxed);
    }

    /// Records an atomic operation (`kind` 0–2).
    #[inline]
    pub(crate) fn push_op(
        &self,
        section: u8,
        kind: u8,
        cc_remote: bool,
        dsm_remote: bool,
        site: u16,
    ) {
        let payload = (section as u64 & 0b11)
            | ((kind as u64 & 0b11) << 2)
            | ((cc_remote as u64) << 4)
            | ((dsm_remote as u64) << 5)
            | ((site as u64) << 6);
        self.push_word(payload);
    }

    /// Records a span boundary marker.
    #[inline]
    pub(crate) fn push_span(&self, section: u8, open: bool) {
        let payload = (section as u64 & 0b11) | (KIND_SPAN << 2) | ((open as u64) << 4);
        self.push_word(payload);
    }

    /// Decodes the retained events, oldest first.
    pub(crate) fn load(&self) -> Vec<RawEvent> {
        let mut events: Vec<RawEvent> = self
            .slots
            .iter()
            .filter_map(|slot| {
                let word = slot.load(Relaxed);
                if word & VALID == 0 {
                    return None;
                }
                Some(RawEvent {
                    seq: word >> SEQ_SHIFT,
                    section: (word & 0b11) as u8,
                    kind: ((word >> 2) & 0b11) as u8,
                    cc_remote: word & (1 << 4) != 0,
                    dsm_remote: word & (1 << 5) != 0,
                    site: ((word >> 6) & 0xFFFF) as u16,
                })
            })
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    pub(crate) fn reset(&self) {
        self.cursor.store(0, Relaxed);
        for slot in &self.slots {
            slot.store(0, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_last_events_in_order() {
        let ring = Ring::new();
        ring.push_span(2, true);
        for i in 0..(RING_LEN as u16 + 10) {
            ring.push_op(0, 2, true, false, i);
        }
        let events = ring.load();
        assert_eq!(events.len(), RING_LEN);
        // The span marker and the 10 oldest ops were overwritten.
        assert_eq!(events.first().unwrap().seq, 11);
        assert_eq!(events.last().unwrap().site, RING_LEN as u16 + 9);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        ring.reset();
        assert!(ring.load().is_empty());
    }

    #[test]
    fn span_markers_round_trip() {
        let ring = Ring::new();
        ring.push_span(2, true);
        ring.push_span(2, false);
        let events = ring.load();
        assert_eq!(events.len(), 2);
        assert!(events[0].is_span_open());
        assert!(!events[1].is_span_open());
        assert_eq!(events[0].kind, 3);
        assert_eq!(events[0].section, 2);
    }
}

//! Static verdict report for every catalog algorithm.
//!
//! ```text
//! cargo run -p kex-analyze --bin analyze            # text report
//! cargo run -p kex-analyze --bin analyze -- --json  # JSON (schema in EXPERIMENTS.md)
//! cargo run -p kex-analyze --bin analyze -- --assert
//!     # exit non-zero unless the expected verdict matrix holds (CI mode)
//! cargo run -p kex-analyze --bin analyze -- --n 16 --k 4
//! ```

use std::process::ExitCode;

use kex_analyze::obligations::{
    expected_obligation_failures, render_obligations_json, render_obligations_text,
};
use kex_analyze::{analyze_all, expected_matrix_failures, render_json, render_text, Config};

const USAGE: &str =
    "usage: analyze [--json] [--assert] [--obligations] [--n N] [--k K] [--max-locs M]\n\
                     \n\
                     Statically audits every algorithm variant: local-spin (CC and DSM),\n\
                     atomic-section size, bounded spin space, name space, and RMR bounds\n\
                     cross-checked against the paper's Table 1.\n\
                     \n\
                     --obligations prints the per-variable ordering obligations derived\n\
                     from the IR (with --json: schema kex-analyze/obligations/v1) instead\n\
                     of the verdict report. --assert additionally pins the obligations.";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = Config::default();
    let mut json = false;
    let mut assert_matrix = false;
    let mut obligations = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let num = |i: &mut usize| -> usize {
        *i += 1;
        args.get(*i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--assert" => assert_matrix = true,
            "--obligations" => obligations = true,
            "--n" => cfg.n = num(&mut i),
            "--k" => cfg.k = num(&mut i),
            "--max-locs" => cfg.max_locs = num(&mut i),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
        i += 1;
    }
    if cfg.k == 0 || cfg.k >= cfg.n {
        eprintln!("analyze: require 1 <= k < N (got k={}, N={})", cfg.k, cfg.n);
        return ExitCode::from(2);
    }
    if let Err(e) = kex_sim::protocol::ProtocolBuilder::try_new(cfg.n) {
        eprintln!("analyze: {e}");
        return ExitCode::from(2);
    }

    if obligations {
        let render = if json {
            render_obligations_json(&cfg)
        } else {
            render_obligations_text(&cfg)
        };
        match render {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let verdicts = match analyze_all(&cfg) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::FAILURE;
            }
        };

        if json {
            println!("{}", render_json(&verdicts, &cfg));
        } else {
            print!("{}", render_text(&verdicts, &cfg));
        }

        if assert_matrix {
            let fails = expected_matrix_failures(&verdicts);
            if !fails.is_empty() {
                eprintln!("analyze: expected verdict matrix violated:");
                for f in &fails {
                    eprintln!("  {f}");
                }
                return ExitCode::FAILURE;
            }
            eprintln!(
                "analyze: expected verdict matrix holds ({} algorithms)",
                verdicts.len()
            );
        }
    }

    if assert_matrix {
        let fails = expected_obligation_failures(&cfg);
        if !fails.is_empty() {
            eprintln!("analyze: pinned ordering obligations violated:");
            for f in &fails {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("analyze: pinned ordering obligations hold");
    }
    ExitCode::SUCCESS
}

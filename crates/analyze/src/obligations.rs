//! Ordering-obligation derivation: the static half of the weak-memory
//! rung.
//!
//! The memory-ordering manifest (`docs/ordering_sites.json`) records
//! what each native atomic site *claims*; this module derives, from the
//! access-summary IR alone, what each shared variable *requires* — so a
//! claim can be checked against the algorithm's structure instead of
//! against prose. Four structural patterns generate obligations:
//!
//! * **Spin words** — a variable read under a [`BackKind::Spin`] back
//!   edge is a wait/publish channel: its loads must acquire and the
//!   stores that terminate the wait must release, or the woken process
//!   may read pre-publication state.
//! * **Gate words** — a variable that is both RMW'd and plainly read
//!   participates in the paper's counter/queue handshakes (`x`, `q`,
//!   `r` in Figures 2 and 6), where the interleaving proofs (invariants
//!   I1–I10) need the single total order only `SeqCst` provides.
//! * **Counters** — a variable touched only through RMWs is a pure
//!   fetch&add/swap counter: `AcqRel` makes the RMW chain a release
//!   sequence, which is all the proofs use.
//! * **Dekker pairs** — a plain write followed (in the same section,
//!   without descending into callees) by a read of a *different*
//!   variable is the store-buffering shape: both sides need `SeqCst`,
//!   exactly the outcome the SB litmus test pins.
//!
//! Obligations are keyed by lower-cased variable *basename* (matching
//! `kex-lint`'s receiver extraction); a basename shared by several IR
//! variables takes, per access kind, the *weakest* requirement among
//! the variables that actually perform that kind — a source site shared
//! by a counter role and a gate role cannot soundly be forced to the
//! stronger one (the fast-path `x` is the motivating case).

use std::collections::HashMap;

use kex_core::sim::build::Algorithm;
use kex_sim::summary::{AccessKind, BackKind, StmtDesc, SuccDesc};
use kex_sim::types::Section;

use crate::{walk, Config, IrError};

/// The minimum ordering an obligation demands of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Req {
    /// No constraint beyond coherence.
    Relaxed,
    /// The load must acquire.
    Acquire,
    /// The store must release.
    Release,
    /// The RMW must both acquire and release.
    AcqRel,
    /// The access participates in a Dekker/handshake pair: nothing
    /// short of the single SC total order is sound.
    SeqCst,
}

impl Req {
    /// Strength rank; `Acquire` and `Release` are incomparable siblings
    /// at the same rank (see [`Req::satisfies`]).
    pub fn rank(self) -> u8 {
        match self {
            Req::Relaxed => 0,
            Req::Acquire | Req::Release => 1,
            Req::AcqRel => 2,
            Req::SeqCst => 3,
        }
    }

    /// Does an ordering of strength `self` discharge an obligation of
    /// `req`? Rank comparison, except that `Release` cannot stand in
    /// for `Acquire` (nor vice versa) — equal rank, disjoint effect.
    pub fn satisfies(self, req: Req) -> bool {
        match (req, self) {
            (Req::Acquire, Req::Release) | (Req::Release, Req::Acquire) => false,
            _ => self.rank() >= req.rank(),
        }
    }

    /// Parse a manifest/doc ordering keyword.
    pub fn parse(s: &str) -> Option<Req> {
        match s {
            "Relaxed" => Some(Req::Relaxed),
            "Acquire" => Some(Req::Acquire),
            "Release" => Some(Req::Release),
            "AcqRel" => Some(Req::AcqRel),
            "SeqCst" => Some(Req::SeqCst),
            _ => None,
        }
    }

    /// The keyword as written in source and manifest.
    pub fn keyword(self) -> &'static str {
        match self {
            Req::Relaxed => "Relaxed",
            Req::Acquire => "Acquire",
            Req::Release => "Release",
            Req::AcqRel => "AcqRel",
            Req::SeqCst => "SeqCst",
        }
    }
}

/// One derived obligation: accesses of `kind` to variables named `var`
/// must be at least `req` strong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// Lower-cased variable basename (`"fig2[3].X"` → `"x"`), the key
    /// `kex-lint` extracts from native receivers.
    pub var: String,
    /// Which access kind the obligation constrains.
    pub kind: AccessKind,
    /// The minimum ordering.
    pub req: Req,
    /// The structural pattern that generated it.
    pub why: String,
}

/// Per-IR-variable structural facts, unioned over all processes.
#[derive(Default)]
struct Facts {
    read: bool,
    write: bool,
    rmw: bool,
    /// Read under a `Spin` back edge.
    spin_read: bool,
    /// Read *not* under a `Spin` back edge.
    plain_read: bool,
    /// Plain write with a later same-section read of another variable.
    dekker_write: bool,
    /// Plainly read after a same-section write of another variable.
    dekker_read: bool,
    /// RMW'd after a same-section write of another variable.
    dekker_rmw: bool,
}

fn is_spin(s: &StmtDesc) -> bool {
    s.back.iter().any(|b| b.kind == BackKind::Spin)
}

/// Statements forward-reachable from `s` within its own section,
/// following `Goto` targets and `Call` *returns* (no descent into the
/// callee: a cross-node pair is mediated by the callee's own sites,
/// which carry their own obligations).
fn reachable_after<'a>(stmts: &'a [StmtDesc], s: &StmtDesc) -> Vec<&'a StmtDesc> {
    let mut seen = vec![false; stmts.len()];
    let mut stack: Vec<u32> = s
        .succ
        .iter()
        .filter_map(|su| match su {
            SuccDesc::Goto(t) => Some(*t),
            SuccDesc::Call { ret, .. } => Some(*ret),
            SuccDesc::Return => None,
        })
        .collect();
    while let Some(pc) = stack.pop() {
        let i = pc as usize;
        if i >= stmts.len() || seen[i] {
            continue;
        }
        seen[i] = true;
        for su in &stmts[i].succ {
            match su {
                SuccDesc::Goto(t) => stack.push(*t),
                SuccDesc::Call { ret, .. } => stack.push(*ret),
                SuccDesc::Return => {}
            }
        }
    }
    stmts.iter().filter(|t| seen[t.pc as usize]).collect()
}

fn collect_section(stmts: &[StmtDesc], facts: &mut HashMap<usize, Facts>) {
    for s in stmts {
        let spin = is_spin(s);
        for a in &s.accesses {
            for v in a.var.iter() {
                let f = facts.entry(v.index()).or_default();
                match a.kind {
                    AccessKind::Read => {
                        f.read = true;
                        if spin {
                            f.spin_read = true;
                        } else {
                            f.plain_read = true;
                        }
                    }
                    AccessKind::Write => f.write = true,
                    AccessKind::Rmw => f.rmw = true,
                }
            }
        }
        // Dekker detection: a plain write of A with a later (same
        // section) non-spin read or RMW of some B != A.
        let writes: Vec<usize> = s
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .flat_map(|a| a.var.iter().map(|v| v.index()))
            .collect();
        if writes.is_empty() {
            continue;
        }
        for t in reachable_after(stmts, s) {
            let t_spin = is_spin(t);
            for a in &t.accesses {
                if a.kind == AccessKind::Read && t_spin {
                    continue; // spin re-reads have their own rule
                }
                if a.kind == AccessKind::Write {
                    continue;
                }
                for v in a.var.iter() {
                    let vi = v.index();
                    if writes.iter().all(|w| *w == vi) {
                        continue; // same variable: coherence suffices
                    }
                    for w in &writes {
                        if *w != vi {
                            facts.entry(*w).or_default().dekker_write = true;
                        }
                    }
                    let f = facts.entry(vi).or_default();
                    match a.kind {
                        AccessKind::Read => f.dekker_read = true,
                        AccessKind::Rmw => f.dekker_rmw = true,
                        AccessKind::Write => unreachable!(),
                    }
                }
            }
        }
    }
}

/// Derive the ordering obligations of `algo`'s shared variables at the
/// given sizing, keyed by lower-cased basename.
pub fn derive_obligations(algo: Algorithm, cfg: &Config) -> Result<Vec<Obligation>, IrError> {
    let proto = algo.build(cfg.n, cfg.k, cfg.max_locs);
    let basenames: HashMap<usize, String> = proto
        .vars()
        .iter()
        .map(|(id, spec)| {
            let base = spec.name.rsplit('.').next().unwrap_or(&spec.name);
            let base: String = base
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            (id.index(), base.to_ascii_lowercase())
        })
        .collect();

    let mut facts: HashMap<usize, Facts> = HashMap::new();
    for p in 0..cfg.n {
        let w = walk(&proto, p)?;
        for (_, desc) in w.iter() {
            for section in [Section::Entry, Section::Exit] {
                collect_section(desc.section(section), &mut facts);
            }
        }
    }

    // Per-variable requirements: max over the rules that fired.
    struct VarReq {
        kind: AccessKind,
        req: Req,
        why: &'static str,
    }
    let mut per_var: HashMap<usize, Vec<VarReq>> = HashMap::new();
    for (vi, f) in &facts {
        let mut reqs: Vec<VarReq> = Vec::new();
        let mut push = |kind: AccessKind, req: Req, why: &'static str| {
            reqs.push(VarReq { kind, req, why });
        };
        // Baseline: every present kind is at least Relaxed, so a
        // variable with no firing rule still yields (vacuous)
        // obligations and the caller can distinguish "unconstrained"
        // from "unknown variable".
        if f.read {
            push(AccessKind::Read, Req::Relaxed, "coherence only");
        }
        if f.write {
            push(AccessKind::Write, Req::Relaxed, "coherence only");
        }
        if f.rmw {
            push(AccessKind::Rmw, Req::Relaxed, "coherence only");
        }
        if f.spin_read {
            push(AccessKind::Read, Req::Acquire, "spin word: busy-wait read");
            if f.write {
                push(
                    AccessKind::Write,
                    Req::Release,
                    "spin word: store terminates a busy-wait",
                );
            }
        }
        let gate = f.rmw && f.plain_read;
        if gate {
            let why = "gate word: RMW'd and plainly read (handshake)";
            push(AccessKind::Rmw, Req::SeqCst, why);
            push(AccessKind::Read, Req::SeqCst, why);
            if f.write {
                push(AccessKind::Write, Req::SeqCst, why);
            }
        }
        if f.rmw && !f.plain_read && !f.spin_read {
            push(
                AccessKind::Rmw,
                Req::AcqRel,
                "counter: accessed only through RMWs",
            );
            if f.write {
                push(
                    AccessKind::Write,
                    Req::Release,
                    "counter reset: store into an RMW chain",
                );
            }
        }
        if f.dekker_write {
            push(
                AccessKind::Write,
                Req::SeqCst,
                "Dekker pair: write before read of another variable",
            );
        }
        if f.dekker_read {
            push(
                AccessKind::Read,
                Req::SeqCst,
                "Dekker pair: read after write of another variable",
            );
        }
        if f.dekker_rmw {
            push(
                AccessKind::Rmw,
                Req::SeqCst,
                "Dekker pair: RMW after write of another variable",
            );
        }
        per_var.insert(*vi, reqs);
    }

    // Aggregate to basenames: per (basename, kind), the *minimum* over
    // the variables that actually perform that kind.
    let mut agg: HashMap<(String, u8), (Req, String)> = HashMap::new();
    let kind_tag = |k: AccessKind| match k {
        AccessKind::Read => 0u8,
        AccessKind::Write => 1,
        AccessKind::Rmw => 2,
    };
    for (vi, reqs) in &per_var {
        let Some(base) = basenames.get(vi) else {
            continue;
        };
        if base.is_empty() {
            continue;
        }
        // This variable's max per kind.
        let mut mine: HashMap<u8, (Req, &'static str)> = HashMap::new();
        for r in reqs {
            let e = mine.entry(kind_tag(r.kind)).or_insert((r.req, r.why));
            if r.req > e.0 {
                *e = (r.req, r.why);
            }
        }
        for (kt, (req, why)) in mine {
            agg.entry((base.clone(), kt))
                .and_modify(|cur| {
                    if req < cur.0 {
                        *cur = (req, why.to_owned());
                    }
                })
                .or_insert((req, why.to_owned()));
        }
    }

    let mut out: Vec<Obligation> = agg
        .into_iter()
        .map(|((var, kt), (req, why))| Obligation {
            var,
            kind: match kt {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::Rmw,
            },
            req,
            why,
        })
        .collect();
    out.sort_by(|a, b| (&a.var, kind_tag(a.kind)).cmp(&(&b.var, kind_tag(b.kind))));
    Ok(out)
}

/// Look up the obligation for (`var` basename, `kind`), if derived.
pub fn obligation_for<'a>(
    obls: &'a [Obligation],
    var: &str,
    kind: AccessKind,
) -> Option<&'a Obligation> {
    obls.iter().find(|o| o.var == var && o.kind == kind)
}

/// Maps a manifest `op` string to the access kind it performs on the
/// modelled IR variable (`swap`, `compare_exchange*`, `fetch_*` and
/// `fetch_update` are all RMWs).
pub fn kind_for_op(op: &str) -> AccessKind {
    match op {
        "load" => AccessKind::Read,
        "store" => AccessKind::Write,
        _ => AccessKind::Rmw,
    }
}

/// Manifest-facing name of an access kind (`load` / `store` / `rmw`).
pub fn kind_name(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "load",
        AccessKind::Write => "store",
        AccessKind::Rmw => "rmw",
    }
}

/// Pinned obligations the `--assert` mode (and the tier-1 suite)
/// enforces: if IR drift ever weakens one of these, the rung loses its
/// teeth silently — so the expectation is written down here, once.
const PINNED: &[(Algorithm, &str, AccessKind, Req)] = &[
    (Algorithm::CcChain, "x", AccessKind::Rmw, Req::SeqCst),
    (Algorithm::CcChain, "x", AccessKind::Read, Req::SeqCst),
    (Algorithm::CcChain, "q", AccessKind::Write, Req::SeqCst),
    (Algorithm::CcChain, "q", AccessKind::Read, Req::Acquire),
    (Algorithm::DsmChain, "x", AccessKind::Rmw, Req::SeqCst),
    (Algorithm::DsmChain, "q", AccessKind::Rmw, Req::SeqCst),
    (Algorithm::DsmChain, "r", AccessKind::Rmw, Req::SeqCst),
    (Algorithm::DsmChain, "p", AccessKind::Write, Req::SeqCst),
    (Algorithm::DsmChain, "p", AccessKind::Read, Req::Acquire),
    (Algorithm::CcFastPath, "x", AccessKind::Rmw, Req::AcqRel),
    (Algorithm::AssignmentCc, "x", AccessKind::Rmw, Req::AcqRel),
    (
        Algorithm::AssignmentCc,
        "x",
        AccessKind::Write,
        Req::Release,
    ),
];

/// Check every algorithm derives obligations and the pinned ones hold;
/// returns human-readable deviations (empty = all as expected).
pub fn expected_obligation_failures(cfg: &Config) -> Vec<String> {
    let mut fails = Vec::new();
    let mut derived: HashMap<Algorithm, Vec<Obligation>> = HashMap::new();
    for a in Algorithm::ALL {
        match derive_obligations(a, cfg) {
            Ok(o) => {
                derived.insert(a, o);
            }
            Err(e) => fails.push(format!("{a:?}: obligation derivation failed: {e}")),
        }
    }
    for (a, var, kind, req) in PINNED {
        let Some(obls) = derived.get(a) else { continue };
        match obligation_for(obls, var, *kind) {
            Some(o) if o.req == *req => {}
            Some(o) => fails.push(format!(
                "{a:?}: {var} {} expected {} obligation, derived {}",
                kind_name(*kind),
                req.keyword(),
                o.req.keyword()
            )),
            None => fails.push(format!(
                "{a:?}: {var} {} expected {} obligation, derived none",
                kind_name(*kind),
                req.keyword()
            )),
        }
    }
    fails
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Text report of every algorithm's derived obligations.
pub fn render_obligations_text(cfg: &Config) -> Result<String, IrError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "derived ordering obligations (N={}, k={})",
        cfg.n, cfg.k
    );
    for a in Algorithm::ALL {
        let obls = derive_obligations(a, cfg)?;
        let _ = writeln!(out, "\n{}", a.label());
        for o in obls {
            let _ = writeln!(
                out,
                "  {:<10} {:<5} >= {:<8} ({})",
                o.var,
                kind_name(o.kind),
                o.req.keyword(),
                o.why
            );
        }
    }
    Ok(out)
}

/// JSON report (schema `kex-analyze/obligations/v1`), the artifact the
/// weak-memory CI job uploads.
pub fn render_obligations_json(cfg: &Config) -> Result<String, IrError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"kex-analyze/obligations/v1\",");
    let _ = writeln!(out, "  \"n\": {}, \"k\": {},", cfg.n, cfg.k);
    let _ = writeln!(out, "  \"algorithms\": [");
    let algos = Algorithm::ALL;
    for (ai, a) in algos.iter().enumerate() {
        let obls = derive_obligations(*a, cfg)?;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"algo\": \"{}\",", esc(a.label()));
        let _ = writeln!(out, "      \"obligations\": [");
        for (i, o) in obls.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"var\": \"{}\", \"op\": \"{}\", \"req\": \"{}\", \"why\": \"{}\"}}{}",
                esc(&o.var),
                kind_name(o.kind),
                o.req.keyword(),
                esc(&o.why),
                if i + 1 < obls.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if ai + 1 < algos.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn derived(algo: Algorithm) -> Vec<Obligation> {
        derive_obligations(algo, &Config::default()).expect("IR walks")
    }

    fn req(obls: &[Obligation], var: &str, kind: AccessKind) -> Req {
        obligation_for(obls, var, kind)
            .unwrap_or_else(|| panic!("no obligation for {var}/{kind:?} in {obls:#?}"))
            .req
    }

    #[test]
    fn fig2_gate_and_spin() {
        let o = derived(Algorithm::CcChain);
        // x is RMW'd and plainly read: full handshake.
        assert_eq!(req(&o, "x", AccessKind::Rmw), Req::SeqCst);
        assert_eq!(req(&o, "x", AccessKind::Read), Req::SeqCst);
        // q is written before the read of x (Dekker) and spun on.
        assert_eq!(req(&o, "q", AccessKind::Write), Req::SeqCst);
        assert_eq!(req(&o, "q", AccessKind::Read), Req::Acquire);
    }

    #[test]
    fn fig6_gates_and_spin_words() {
        let o = derived(Algorithm::DsmChain);
        for var in ["x", "q", "r"] {
            assert_eq!(req(&o, var, AccessKind::Rmw), Req::SeqCst, "{var}");
        }
        // p: spin word, published with a Dekker-paired write.
        assert_eq!(req(&o, "p", AccessKind::Write), Req::SeqCst);
        assert_eq!(req(&o, "p", AccessKind::Read), Req::Acquire);
    }

    #[test]
    fn fastpath_counter_is_weakest_sharer() {
        // The fast-path root's x is a pure counter; the fig2 stages it
        // calls have a gate named x. The basename takes the weaker.
        let o = derived(Algorithm::CcFastPath);
        assert_eq!(req(&o, "x", AccessKind::Rmw), Req::AcqRel);
    }

    #[test]
    fn assignment_bits_counter() {
        // `rename.X` (basename `x`) is the test-and-set name array: a
        // counter with a reset store; the fig2 stage gates sharing the
        // basename keep the RMW at the weaker AcqRel.
        let o = derived(Algorithm::AssignmentCc);
        assert_eq!(req(&o, "x", AccessKind::Rmw), Req::AcqRel);
        assert_eq!(req(&o, "x", AccessKind::Write), Req::Release);
    }

    #[test]
    fn satisfies_is_ranked_with_disjoint_siblings() {
        assert!(Req::SeqCst.satisfies(Req::Acquire));
        assert!(Req::AcqRel.satisfies(Req::Release));
        assert!(Req::Acquire.satisfies(Req::Acquire));
        assert!(!Req::Release.satisfies(Req::Acquire));
        assert!(!Req::Acquire.satisfies(Req::Release));
        assert!(!Req::Relaxed.satisfies(Req::Acquire));
        assert!(Req::Relaxed.satisfies(Req::Relaxed));
    }

    #[test]
    fn all_algorithms_derive() {
        for a in Algorithm::ALL {
            derive_obligations(a, &Config::default()).unwrap_or_else(|e| panic!("{a:?}: {e}"));
        }
    }
}

//! # kex-analyze — static analyses over the protocol IR
//!
//! Every claim Table 1 of the paper makes about its algorithms is
//! *structural*: local-spin means no statement busy-waits on a variable
//! another process's cache/partition owns; constant atomic sections
//! means no single numbered statement touches `O(N)` variables; bounded
//! space means each process spins on finitely many locations; and the
//! RMR bounds (`7(N-k)`, `14(N-k)`, ...) are worst-case path sums over
//! the numbered statements. None of this depends on a schedule — so
//! none of it should require *running* anything.
//!
//! This crate audits those claims directly from the access-summary IR
//! that every [`Node`](kex_sim::node::Node) exports via
//! [`describe`](kex_sim::node::Node::describe), without executing a
//! single step:
//!
//! 1. **Local-spin audit** — classify each spin statement's targets as
//!    local or remote under both the CC and DSM cost models, and flag
//!    unbounded retry loops whose bodies cross the interconnect (the
//!    global-spin baseline's failure shape).
//! 2. **Atomic-section lint** — flag statements whose declared access
//!    multiplicity exceeds [`ATOMIC_BOUND`] (the Figure-1 queue's
//!    `O(N)` scans).
//! 3. **Bounded-space check** — count distinct spin locations per
//!    process per node against the Figure-6 bound (`exclusion + 2`),
//!    and verify the k-assignment name space is exactly `0..k`.
//! 4. **RMR bound** — worst-case remote references along any
//!    entry+exit path, cross-checked against the Table-1 formulas.
//!
//! Entry points: [`analyze_protocol`] for a single built protocol,
//! [`analyze_algorithm`] / [`analyze_all`] for the
//! [`Algorithm`] catalog, [`render_text`] / [`render_json`] for
//! reports, and [`expected_matrix_failures`] for the pinned verdict
//! matrix the test suite (and CI's `--assert` mode) enforces.

pub mod obligations;

use std::collections::HashMap;
use std::sync::Arc;

use kex_core::sim::build::Algorithm;
use kex_sim::memmodel::MemoryModel;
use kex_sim::protocol::Protocol;
use kex_sim::summary::{
    AccessDesc, AccessKind, BackKind, NodeDesc, SpaceClass, StmtDesc, SuccDesc,
};
use kex_sim::types::{NodeId, Pid, Section, VarId};
use kex_sim::vars::VarTable;

/// Maximum shared accesses one atomic statement may declare before the
/// atomic-section lint flags it. The paper's own statements perform at
/// most a handful of accesses (a read-modify-write plus a write or
/// two); the Figure-1 queue's `Enqueue`/`Dequeue`/`Element` scans are
/// `O(N)` and must trip this.
pub const ATOMIC_BOUND: usize = 4;

/// Sizing parameters for the analyzed instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Process count `N`.
    pub n: usize,
    /// Exclusion bound `k`.
    pub k: usize,
    /// Figure-5 simulated spin-location supply.
    pub max_locs: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 8,
            k: 2,
            max_locs: 64,
        }
    }
}

/// A statically derived cost: a finite worst case, or provably
/// unbounded (some schedule makes it grow without limit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cost {
    /// At most this many remote references.
    Finite(u64),
    /// No finite bound holds over all schedules.
    Unbounded,
}

impl Cost {
    fn plus(self, other: Cost) -> Cost {
        match (self, other) {
            (Cost::Finite(a), Cost::Finite(b)) => Cost::Finite(a.saturating_add(b)),
            _ => Cost::Unbounded,
        }
    }

    fn times(self, m: u64) -> Cost {
        match self {
            Cost::Finite(a) => Cost::Finite(a.saturating_mul(m)),
            Cost::Unbounded => Cost::Unbounded,
        }
    }

    /// `true` iff a finite bound was derived.
    pub fn is_finite(self) -> bool {
        matches!(self, Cost::Finite(_))
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cost::Finite(v) => write!(f, "{v}"),
            Cost::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// A structural defect in a node's self-description (IR contract
/// violation) — or a node that refuses to describe itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError {
    /// The offending node's diagnostic name.
    pub node: String,
    /// What was wrong.
    pub detail: String,
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ir error in node `{}`: {}", self.node, self.detail)
    }
}

impl std::error::Error for IrError {}

/// One analysis finding, anchored to a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flag {
    /// Node the statement belongs to.
    pub node: String,
    /// Which section.
    pub section: Section,
    /// Statement number.
    pub pc: u32,
    /// The statement's own label.
    pub label: String,
    /// Why it was flagged.
    pub detail: String,
}

/// Per-node spin-space accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpace {
    /// Node name.
    pub node: String,
    /// The node's declared exclusion parameter, if any.
    pub exclusion: Option<usize>,
    /// Worst-case distinct spin locations for any one process.
    pub spin_locations: usize,
    /// The Figure-6 bound this is held to (`exclusion + 2`), when the
    /// node declares an exclusion parameter.
    pub bound: Option<usize>,
    /// Declared space class.
    pub declared: SpaceClass,
}

impl NodeSpace {
    /// Does the counted spin-location set respect the bound?
    pub fn within_bound(&self) -> bool {
        match self.bound {
            Some(b) => self.spin_locations <= b,
            None => true,
        }
    }
}

/// The complete static verdict for one built protocol.
#[derive(Debug, Clone)]
pub struct ProtocolReport {
    /// Process count analyzed.
    pub n: usize,
    /// Exclusion bound analyzed.
    pub k: usize,
    /// Local-spin violations under the CC cost model.
    pub spin_cc: Vec<Flag>,
    /// Local-spin violations under the DSM cost model.
    pub spin_dsm: Vec<Flag>,
    /// Oversized atomic sections (more than [`ATOMIC_BOUND`] accesses).
    pub atomic: Vec<Flag>,
    /// Per-node spin-space accounting.
    pub space: Vec<NodeSpace>,
    /// Worst declared space class over all nodes.
    pub space_class: SpaceClass,
    /// Does the root statically assign names?
    pub assigns_names: bool,
    /// The root's name-space size for this `k`.
    pub name_space: usize,
    /// Worst-case remote references per acquisition, CC model.
    pub rmr_cc: Cost,
    /// Worst-case remote references per acquisition, DSM model.
    pub rmr_dsm: Cost,
}

impl ProtocolReport {
    /// No local-spin violations under `model`?
    pub fn local_spin_clean(&self, model: MemoryModel) -> bool {
        match model {
            MemoryModel::CacheCoherent => self.spin_cc.is_empty(),
            MemoryModel::Dsm => self.spin_dsm.is_empty(),
        }
    }

    /// No oversized atomic statements?
    pub fn atomic_clean(&self) -> bool {
        self.atomic.is_empty()
    }

    /// Every node's spin-location count respects its bound?
    pub fn space_ok(&self) -> bool {
        self.space.iter().all(NodeSpace::within_bound)
    }

    /// Root assigns names from exactly `0..k`?
    pub fn names_exact(&self) -> bool {
        self.assigns_names && self.name_space == self.k
    }

    /// The RMR cost under `model`.
    pub fn rmr(&self, model: MemoryModel) -> Cost {
        match model {
            MemoryModel::CacheCoherent => self.rmr_cc,
            MemoryModel::Dsm => self.rmr_dsm,
        }
    }
}

/// A Table-1 formula cross-check for one catalog variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Check {
    /// The formula as printed in the paper.
    pub formula: &'static str,
    /// Its value at the analyzed `(N, k)`.
    pub value: u64,
    /// The model the formula applies to.
    pub model: MemoryModel,
    /// Did the derived RMR bound equal the formula?
    pub matches: bool,
}

/// Verdict for one [`Algorithm`] catalog variant.
#[derive(Debug, Clone)]
pub struct AlgoVerdict {
    /// Which variant.
    pub algo: Algorithm,
    /// The protocol-level verdicts.
    pub report: ProtocolReport,
    /// Table-1 cross-check, for the variants the paper tabulates.
    pub table1: Option<Table1Check>,
}

// ---------------------------------------------------------------------------
// IR walking and validation
// ---------------------------------------------------------------------------

/// All node descriptions reachable from the root, for one process.
struct Walk {
    descs: Vec<Option<(NodeId, NodeDesc)>>,
}

impl Walk {
    fn get(&self, id: NodeId) -> &NodeDesc {
        &self.descs[id.index()]
            .as_ref()
            .expect("walk reached an uncollected node")
            .1
    }

    fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeDesc)> {
        self.descs
            .iter()
            .filter_map(|e| e.as_ref().map(|(id, d)| (*id, d)))
    }
}

fn walk(proto: &Protocol, p: Pid) -> Result<Walk, IrError> {
    let mut descs: Vec<Option<(NodeId, NodeDesc)>> =
        (0..proto.node_count()).map(|_| None).collect();
    let mut stack = vec![proto.root()];
    while let Some(id) = stack.pop() {
        if descs[id.index()].is_some() {
            continue;
        }
        let node = proto.node(id);
        let desc = node.describe(p).ok_or_else(|| IrError {
            node: node.name(),
            detail: format!("not describable for process {p} (describe() returned None)"),
        })?;
        validate(&desc, &node.name(), proto.node_count())?;
        for s in desc.entry.iter().chain(desc.exit.iter()) {
            for su in &s.succ {
                if let SuccDesc::Call { child, .. } = su {
                    stack.push(*child);
                }
            }
        }
        descs[id.index()] = Some((id, desc));
    }
    Ok(Walk { descs })
}

/// Enforce the IR contract documented in [`kex_sim::summary`].
fn validate(desc: &NodeDesc, name: &str, node_count: usize) -> Result<(), IrError> {
    let err = |detail: String| {
        Err(IrError {
            node: name.to_owned(),
            detail,
        })
    };
    let mut has_spin = false;
    for section in [Section::Entry, Section::Exit] {
        let stmts = desc.section(section);
        if stmts.is_empty() {
            return err(format!("{section} section has no statements"));
        }
        let len = stmts.len() as u32;
        for (i, s) in stmts.iter().enumerate() {
            let i = i as u32;
            let ctx = format!("{section} pc {i}");
            if s.pc != i {
                return err(format!(
                    "{ctx}: non-dense numbering (statement says {})",
                    s.pc
                ));
            }
            if s.succ.is_empty() && s.back.is_empty() {
                return err(format!("{ctx}: no successors at all"));
            }
            for su in &s.succ {
                match *su {
                    SuccDesc::Goto(t) => {
                        if t <= i || t >= len {
                            return err(format!("{ctx}: goto target {t} not strictly forward"));
                        }
                    }
                    SuccDesc::Call { child, ret, .. } => {
                        if child.index() >= node_count {
                            return err(format!("{ctx}: call to unknown node {child:?}"));
                        }
                        if ret <= i || ret >= len {
                            return err(format!("{ctx}: call return {ret} not strictly forward"));
                        }
                    }
                    SuccDesc::Return => {}
                }
            }
            for b in &s.back {
                if b.to > s.pc {
                    return err(format!("{ctx}: back edge to {} goes forward", b.to));
                }
                if b.kind == BackKind::Spin {
                    has_spin = true;
                }
            }
            for a in &s.accesses {
                if a.multiplicity == 0 {
                    return err(format!("{ctx}: zero-multiplicity access"));
                }
            }
        }
    }
    if desc.spin_space == SpaceClass::NoSpin && has_spin {
        return err("declares NoSpin but contains spin back edges".to_owned());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The cost model
// ---------------------------------------------------------------------------

/// May this access touch a variable that is remote to `p` under DSM?
fn dsm_remote(a: &AccessDesc, p: Pid, vars: &VarTable) -> bool {
    a.var.iter().any(|v| vars.spec(v).owner != Some(p))
}

/// Diagnostic name of the first DSM-remote candidate of `a`.
fn dsm_remote_name(a: &AccessDesc, p: Pid, vars: &VarTable) -> String {
    a.var
        .iter()
        .find(|v| vars.spec(*v).owner != Some(p))
        .map(|v| vars.spec(v).name.clone())
        .unwrap_or_default()
}

fn is_spin(s: &StmtDesc) -> bool {
    s.back.iter().any(|b| b.kind == BackKind::Spin)
}

/// Worst-case remote references charged to one execution of `s` by
/// process `p`, per the §2 accounting rules.
///
/// * **CC**: every declared access is charged one remote reference per
///   repetition (a cold miss / invalidation in the worst case). A
///   read-only spin statement is charged its base cost **plus one**:
///   the initial miss caches the line, re-reads are local, and the
///   terminating write by another process costs one final re-read —
///   the paper's "at most two remote references" rule generalized. A
///   spin statement that *writes* shared memory has no such bound:
///   every retry invalidates remotely — [`Cost::Unbounded`].
/// * **DSM**: an access is charged per repetition iff some candidate
///   variable lives in another process's partition. A spin statement
///   whose target may be remote re-crosses the interconnect on every
///   iteration — [`Cost::Unbounded`]. Local spins are free.
fn stmt_cost(model: MemoryModel, p: Pid, vars: &VarTable, s: &StmtDesc) -> Cost {
    match model {
        MemoryModel::CacheCoherent => {
            let base: u64 = s.accesses.iter().map(|a| a.multiplicity as u64).sum();
            if is_spin(s) {
                if s.accesses.iter().any(|a| a.kind != AccessKind::Read) {
                    Cost::Unbounded
                } else {
                    Cost::Finite(base + 1)
                }
            } else {
                Cost::Finite(base)
            }
        }
        MemoryModel::Dsm => {
            let base: u64 = s
                .accesses
                .iter()
                .filter(|a| dsm_remote(a, p, vars))
                .map(|a| a.multiplicity as u64)
                .sum();
            if is_spin(s) && base > 0 {
                Cost::Unbounded
            } else {
                Cost::Finite(base)
            }
        }
    }
}

/// Worst-case remote references for one execution of a node section by
/// process `p`: per-statement costs, bounded-retry multipliers, the
/// unbounded-retry rule, then a longest-path DP over the back-edge-free
/// DAG (recursing into `Call` children, memoized).
fn section_cost(
    proto: &Protocol,
    model: MemoryModel,
    p: Pid,
    w: &Walk,
    id: NodeId,
    section: Section,
    memo: &mut HashMap<(usize, Section), Cost>,
) -> Cost {
    let key = (id.index(), section);
    if let Some(c) = memo.get(&key) {
        return *c;
    }
    let desc = w.get(id);
    let stmts = desc.section(section);
    let len = stmts.len();
    let mut base: Vec<Cost> = stmts
        .iter()
        .map(|s| stmt_cost(model, p, proto.vars(), s))
        .collect();
    // A bounded retry executes its body at most `m` times in total:
    // scale every statement the back edge can re-reach.
    for s in stmts {
        for b in &s.back {
            if let BackKind::Bounded(m) = b.kind {
                for c in base.iter_mut().take(s.pc as usize + 1).skip(b.to as usize) {
                    *c = c.times(m as u64);
                }
            }
        }
    }
    // An unbounded retry whose body performs remote work has no finite
    // per-acquisition bound — the global-spin failure shape.
    let mut unbounded = false;
    for s in stmts {
        for b in &s.back {
            if b.kind == BackKind::Unbounded
                && base[b.to as usize..=s.pc as usize]
                    .iter()
                    .any(|c| *c != Cost::Finite(0))
            {
                unbounded = true;
            }
        }
    }
    let result = if unbounded {
        Cost::Unbounded
    } else {
        let mut dp = vec![Cost::Finite(0); len];
        for i in (0..len).rev() {
            let mut best = Cost::Finite(0);
            for su in &stmts[i].succ {
                let c = match *su {
                    SuccDesc::Goto(t) => dp[t as usize],
                    SuccDesc::Return => Cost::Finite(0),
                    SuccDesc::Call {
                        child,
                        section: cs,
                        ret,
                    } => section_cost(proto, model, p, w, child, cs, memo).plus(dp[ret as usize]),
                };
                best = best.max(c);
            }
            dp[i] = base[i].plus(best);
        }
        dp[0]
    };
    memo.insert(key, result);
    result
}

// ---------------------------------------------------------------------------
// The four analyses
// ---------------------------------------------------------------------------

fn push_flag(flags: &mut Vec<Flag>, f: Flag) {
    if !flags.contains(&f) {
        flags.push(f);
    }
}

fn flag(node: &str, section: Section, s: &StmtDesc, detail: String) -> Flag {
    Flag {
        node: node.to_owned(),
        section,
        pc: s.pc,
        label: s.label.to_owned(),
        detail,
    }
}

fn first_name(a: &AccessDesc, vars: &VarTable) -> String {
    a.var
        .iter()
        .next()
        .map(|v| vars.spec(v).name.clone())
        .unwrap_or_default()
}

fn spin_flags(proto: &Protocol, p: Pid, w: &Walk, model: MemoryModel, flags: &mut Vec<Flag>) {
    let vars = proto.vars();
    for (id, desc) in w.iter() {
        let name = proto.node(id).name();
        for section in [Section::Entry, Section::Exit] {
            let stmts = desc.section(section);
            for s in stmts {
                if is_spin(s) {
                    match model {
                        MemoryModel::CacheCoherent => {
                            if let Some(a) = s.accesses.iter().find(|a| a.kind != AccessKind::Read)
                            {
                                let v = first_name(a, vars);
                                push_flag(
                                    flags,
                                    flag(&name, section, s, format!(
                                        "spin body writes `{v}` — every retry invalidates remotely under CC"
                                    )),
                                );
                            }
                        }
                        MemoryModel::Dsm => {
                            if let Some(a) = s.accesses.iter().find(|a| dsm_remote(a, p, vars)) {
                                let v = dsm_remote_name(a, p, vars);
                                push_flag(
                                    flags,
                                    flag(
                                        &name,
                                        section,
                                        s,
                                        format!("spins on `{v}`, which is remote under DSM"),
                                    ),
                                );
                            }
                        }
                    }
                }
                for b in &s.back {
                    if b.kind != BackKind::Unbounded {
                        continue;
                    }
                    let body = &stmts[b.to as usize..=s.pc as usize];
                    let crosses = body.iter().any(|t| match model {
                        MemoryModel::CacheCoherent => !t.accesses.is_empty(),
                        MemoryModel::Dsm => t.accesses.iter().any(|a| dsm_remote(a, p, vars)),
                    });
                    if crosses {
                        push_flag(
                            flags,
                            flag(
                                &name,
                                section,
                                s,
                                format!(
                                "unbounded retry to pc {}: every attempt performs remote accesses",
                                b.to
                            ),
                            ),
                        );
                    }
                }
            }
        }
    }
}

fn atomic_flags(proto: &Protocol, w: &Walk, flags: &mut Vec<Flag>) {
    for (id, desc) in w.iter() {
        let name = proto.node(id).name();
        for section in [Section::Entry, Section::Exit] {
            for s in desc.section(section) {
                let total: usize = s.accesses.iter().map(|a| a.multiplicity).sum();
                if total > ATOMIC_BOUND {
                    push_flag(
                        flags,
                        flag(
                            &name,
                            section,
                            s,
                            format!(
                            "{total} shared accesses in one atomic statement (bound {ATOMIC_BOUND})"
                        ),
                        ),
                    );
                }
            }
        }
    }
}

/// Distinct spin-target variables of `desc` (both sections).
fn spin_locations(desc: &NodeDesc) -> usize {
    let mut locs: Vec<VarId> = Vec::new();
    for section in [Section::Entry, Section::Exit] {
        for s in desc.section(section) {
            if !is_spin(s) {
                continue;
            }
            for a in &s.accesses {
                for v in a.var.iter() {
                    if !locs.contains(&v) {
                        locs.push(v);
                    }
                }
            }
        }
    }
    locs.len()
}

/// Run all four analyses on a built protocol.
///
/// Fails with [`IrError`] if any reachable node is not describable or
/// its description violates the IR contract.
pub fn analyze_protocol(proto: &Protocol) -> Result<ProtocolReport, IrError> {
    let n = proto.n();
    let k = proto.k();
    let root = proto.root();

    let mut spin_cc = Vec::new();
    let mut spin_dsm = Vec::new();
    let mut atomic = Vec::new();
    let mut space_by_node: HashMap<usize, NodeSpace> = HashMap::new();
    let mut rmr_cc = Cost::Finite(0);
    let mut rmr_dsm = Cost::Finite(0);

    for p in 0..n {
        let w = walk(proto, p)?;
        spin_flags(proto, p, &w, MemoryModel::CacheCoherent, &mut spin_cc);
        spin_flags(proto, p, &w, MemoryModel::Dsm, &mut spin_dsm);
        atomic_flags(proto, &w, &mut atomic);
        for (id, desc) in w.iter() {
            let locs = spin_locations(desc);
            let entry = space_by_node
                .entry(id.index())
                .or_insert_with(|| NodeSpace {
                    node: proto.node(id).name(),
                    exclusion: desc.exclusion,
                    spin_locations: 0,
                    bound: desc.exclusion.map(|j| j + 2),
                    declared: desc.spin_space,
                });
            entry.spin_locations = entry.spin_locations.max(locs);
        }
        for (model, acc) in [
            (MemoryModel::CacheCoherent, &mut rmr_cc),
            (MemoryModel::Dsm, &mut rmr_dsm),
        ] {
            let mut memo = HashMap::new();
            let total = section_cost(proto, model, p, &w, root, Section::Entry, &mut memo).plus(
                section_cost(proto, model, p, &w, root, Section::Exit, &mut memo),
            );
            *acc = (*acc).max(total);
        }
    }

    let mut space: Vec<NodeSpace> = space_by_node.into_values().collect();
    space.sort_by(|a, b| a.node.cmp(&b.node));
    let space_class = space
        .iter()
        .map(|s| s.declared)
        .max_by_key(|c| match c {
            SpaceClass::NoSpin => 0,
            SpaceClass::Bounded => 1,
            SpaceClass::Unbounded => 2,
        })
        .unwrap_or(SpaceClass::NoSpin);

    let root_node = proto.node(root);
    Ok(ProtocolReport {
        n,
        k,
        spin_cc,
        spin_dsm,
        atomic,
        space,
        space_class,
        assigns_names: root_node.assigns_names(),
        name_space: root_node.name_space(k),
        rmr_cc,
        rmr_dsm,
    })
}

// ---------------------------------------------------------------------------
// Catalog wrappers and Table-1 cross-checks
// ---------------------------------------------------------------------------

fn log2_ceil(x: usize) -> u64 {
    if x <= 1 {
        0
    } else {
        u64::from(usize::BITS - (x - 1).leading_zeros())
    }
}

/// The Table-1 formula for `algo` at `(n, k)`, if the paper tabulates
/// one for it.
fn table1_formula(algo: Algorithm, n: usize, k: usize) -> Option<(&'static str, u64, MemoryModel)> {
    let n64 = n as u64;
    let k64 = k as u64;
    let levels = log2_ceil(n.div_ceil(k));
    match algo {
        Algorithm::CcChain => Some(("7(N-k)", 7 * (n64 - k64), MemoryModel::CacheCoherent)),
        Algorithm::CcTree => Some((
            "7k*ceil(log2(N/k))",
            7 * k64 * levels,
            MemoryModel::CacheCoherent,
        )),
        Algorithm::DsmChain => Some(("14(N-k)", 14 * (n64 - k64), MemoryModel::Dsm)),
        Algorithm::DsmTree => Some(("14k*ceil(log2(N/k))", 14 * k64 * levels, MemoryModel::Dsm)),
        _ => None,
    }
}

/// Analyze one catalog variant at the given sizing.
pub fn analyze_algorithm(algo: Algorithm, cfg: &Config) -> Result<AlgoVerdict, IrError> {
    let proto: Arc<Protocol> = algo.build(cfg.n, cfg.k, cfg.max_locs);
    let report = analyze_protocol(&proto)?;
    let table1 = table1_formula(algo, cfg.n, cfg.k).map(|(formula, value, model)| Table1Check {
        formula,
        value,
        model,
        matches: report.rmr(model) == Cost::Finite(value),
    });
    Ok(AlgoVerdict {
        algo,
        report,
        table1,
    })
}

/// Analyze every variant in [`Algorithm::ALL`].
pub fn analyze_all(cfg: &Config) -> Result<Vec<AlgoVerdict>, IrError> {
    Algorithm::ALL
        .iter()
        .map(|&a| analyze_algorithm(a, cfg))
        .collect()
}

/// The lower-cased base names of every variable the algorithm's IR
/// declares — `"fig2[3].X"` and `"fig6[1].R[2][0]"` reduce to `"x"` and
/// `"r"`.
///
/// This is the IR half of `kex-lint`'s cross-layer drift audit: the
/// lint extracts the receiver names of the native atomic sites from
/// source and checks each against this set for the corresponding
/// catalog variant, so the IR and the native code cannot silently
/// disagree about which shared variables an algorithm touches.
pub fn ir_var_basenames(algo: Algorithm, cfg: &Config) -> std::collections::BTreeSet<String> {
    let proto = algo.build(cfg.n, cfg.k, cfg.max_locs);
    proto
        .vars()
        .iter()
        .map(|(_, spec)| {
            let base = spec.name.rsplit('.').next().unwrap_or(&spec.name);
            base.chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<String>()
                .to_ascii_lowercase()
        })
        .filter(|s| !s.is_empty())
        .collect()
}

// ---------------------------------------------------------------------------
// The pinned verdict matrix
// ---------------------------------------------------------------------------

/// Check the verdicts against the expected matrix for the paper's
/// algorithms; returns a human-readable list of deviations (empty =
/// everything as the paper claims).
///
/// This is the contract the tier-1 test and CI's `--assert` mode
/// enforce — see `docs/ANALYZER.md` for the table in prose.
pub fn expected_matrix_failures(verdicts: &[AlgoVerdict]) -> Vec<String> {
    use Algorithm::*;
    let mut fails = Vec::new();
    let get = |a: Algorithm| verdicts.iter().find(|v| v.algo == a);
    let mut expect = |cond: bool, msg: String| {
        if !cond {
            fails.push(msg);
        }
    };

    for a in Algorithm::ALL {
        if get(a).is_none() {
            expect(false, format!("{a:?}: no verdict produced"));
        }
    }

    if let Some(gs) = get(GlobalSpin) {
        expect(
            !gs.report.local_spin_clean(MemoryModel::CacheCoherent),
            "GlobalSpin: expected a remote-spin flag under CC".into(),
        );
        expect(
            !gs.report.local_spin_clean(MemoryModel::Dsm),
            "GlobalSpin: expected a remote-spin flag under DSM".into(),
        );
        expect(
            gs.report.rmr_cc == Cost::Unbounded && gs.report.rmr_dsm == Cost::Unbounded,
            format!(
                "GlobalSpin: expected unbounded RMR on both models, got CC={} DSM={}",
                gs.report.rmr_cc, gs.report.rmr_dsm
            ),
        );
    }

    for v in verdicts {
        if v.algo == QueueFig1 {
            expect(
                !v.report.atomic_clean(),
                "QueueFig1: expected oversized-atomic-section flags".into(),
            );
        } else {
            expect(
                v.report.atomic_clean(),
                format!(
                    "{:?}: unexpected oversized atomic section: {:?}",
                    v.algo,
                    v.report.atomic.first().map(|f| &f.detail)
                ),
            );
        }
    }

    for a in [CcChain, CcTree, CcFastPath, CcGraceful, AssignmentCc] {
        if let Some(v) = get(a) {
            expect(
                v.report.local_spin_clean(MemoryModel::CacheCoherent),
                format!(
                    "{a:?}: expected local-spin-clean under CC, got {:?}",
                    v.report.spin_cc.first().map(|f| &f.detail)
                ),
            );
        }
    }

    for a in [
        DsmUnboundedChain,
        DsmChain,
        DsmTree,
        DsmFastPath,
        DsmGraceful,
        AssignmentDsm,
    ] {
        if let Some(v) = get(a) {
            expect(
                v.report.local_spin_clean(MemoryModel::Dsm),
                format!(
                    "{a:?}: expected local-spin-clean under DSM, got {:?}",
                    v.report.spin_dsm.first().map(|f| &f.detail)
                ),
            );
        }
    }

    // Figure-6-based constructions: every stage spins on at most
    // `exclusion + 2` locations per process.
    for a in [DsmChain, DsmTree, DsmFastPath, DsmGraceful, AssignmentDsm] {
        if let Some(v) = get(a) {
            for s in &v.report.space {
                expect(
                    s.within_bound(),
                    format!(
                        "{a:?}: node `{}` spins on {} locations, bound {:?}",
                        s.node, s.spin_locations, s.bound
                    ),
                );
            }
        }
    }

    if let Some(v) = get(DsmUnboundedChain) {
        expect(
            v.report.space_class == SpaceClass::Unbounded,
            "DsmUnboundedChain: expected declared-unbounded spin space (Figure 5)".into(),
        );
    }

    for a in [AssignmentCc, AssignmentDsm] {
        if let Some(v) = get(a) {
            expect(
                v.report.names_exact(),
                format!(
                    "{a:?}: expected exact name space 0..k, got assigns={} space={}",
                    v.report.assigns_names, v.report.name_space
                ),
            );
        }
    }

    for v in verdicts {
        if let Some(t) = &v.table1 {
            expect(
                t.matches,
                format!(
                    "{:?}: RMR bound {} does not match Table-1 formula {} = {}",
                    v.algo,
                    v.report.rmr(t.model),
                    t.formula,
                    t.value
                ),
            );
        }
    }

    fails
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn mark(clean: bool) -> &'static str {
    if clean {
        "ok"
    } else {
        "FLAG"
    }
}

fn space_label(c: SpaceClass) -> &'static str {
    match c {
        SpaceClass::NoSpin => "no-spin",
        SpaceClass::Bounded => "bounded",
        SpaceClass::Unbounded => "unbounded",
    }
}

/// Render the verdicts as a human-readable text report.
pub fn render_text(verdicts: &[AlgoVerdict], cfg: &Config) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "kex-analyze: static verdicts at N={}, k={} (max_locs={})",
        cfg.n, cfg.k, cfg.max_locs
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<22} {:>5}  {:>9} {:>9} {:>7} {:>10} {:>6} {:>9} {:>9}  table-1",
        "algorithm",
        "model",
        "spin(CC)",
        "spin(DSM)",
        "atomic",
        "space",
        "names",
        "RMR(CC)",
        "RMR(DSM)"
    );
    for v in verdicts {
        let r = &v.report;
        let names = if r.assigns_names {
            format!("0..{}", r.name_space)
        } else {
            "-".to_owned()
        };
        let table1 = match &v.table1 {
            Some(t) => format!(
                "{} = {} ({})",
                t.formula,
                t.value,
                if t.matches { "match" } else { "MISMATCH" }
            ),
            None => "-".to_owned(),
        };
        let _ = writeln!(
            out,
            "{:<22} {:>5}  {:>9} {:>9} {:>7} {:>10} {:>6} {:>9} {:>9}  {}",
            v.algo.label(),
            v.algo.model().label(),
            mark(r.local_spin_clean(MemoryModel::CacheCoherent)),
            mark(r.local_spin_clean(MemoryModel::Dsm)),
            mark(r.atomic_clean()),
            space_label(r.space_class),
            names,
            r.rmr_cc.to_string(),
            r.rmr_dsm.to_string(),
            table1,
        );
    }
    let mut any = false;
    for v in verdicts {
        let r = &v.report;
        let groups: [(&str, &Vec<Flag>); 3] = [
            ("spin/CC", &r.spin_cc),
            ("spin/DSM", &r.spin_dsm),
            ("atomic", &r.atomic),
        ];
        for (tag, flags) in groups {
            for f in flags {
                if !any {
                    let _ = writeln!(out);
                    let _ = writeln!(out, "flags:");
                    any = true;
                }
                let _ = writeln!(
                    out,
                    "  [{tag}] {} / {} {} pc {}: {} — {}",
                    v.algo.label(),
                    f.node,
                    f.section,
                    f.pc,
                    f.label,
                    f.detail
                );
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_cost(c: Cost) -> String {
    match c {
        Cost::Finite(v) => v.to_string(),
        Cost::Unbounded => "\"unbounded\"".to_owned(),
    }
}

fn json_flags(flags: &[Flag]) -> String {
    let items: Vec<String> = flags
        .iter()
        .map(|f| {
            format!(
                "{{\"node\":\"{}\",\"section\":\"{}\",\"pc\":{},\"label\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(&f.node),
                f.section,
                f.pc,
                json_escape(&f.label),
                json_escape(&f.detail)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Render the verdicts as JSON (schema documented in `EXPERIMENTS.md`).
pub fn render_json(verdicts: &[AlgoVerdict], cfg: &Config) -> String {
    let mut algos: Vec<String> = Vec::new();
    for v in verdicts {
        let r = &v.report;
        let space_nodes: Vec<String> = r
            .space
            .iter()
            .filter(|s| s.spin_locations > 0 || s.exclusion.is_some())
            .map(|s| {
                format!(
                    "{{\"node\":\"{}\",\"exclusion\":{},\"spin_locations\":{},\"bound\":{},\"within\":{},\"declared\":\"{}\"}}",
                    json_escape(&s.node),
                    s.exclusion.map_or("null".to_owned(), |e| e.to_string()),
                    s.spin_locations,
                    s.bound.map_or("null".to_owned(), |b| b.to_string()),
                    s.within_bound(),
                    space_label(s.declared),
                )
            })
            .collect();
        let table1 = match &v.table1 {
            Some(t) => format!(
                "{{\"formula\":\"{}\",\"value\":{},\"model\":\"{}\",\"matches\":{}}}",
                json_escape(t.formula),
                t.value,
                t.model.label(),
                t.matches
            ),
            None => "null".to_owned(),
        };
        let space_nodes = format!("[{}]", space_nodes.join(","));
        algos.push(format!(
            concat!(
                "{{\"id\":\"{id:?}\",\"label\":\"{label}\",\"target_model\":\"{model}\",",
                "\"local_spin\":{{\"cc\":{{\"clean\":{cc_clean},\"flags\":{cc_flags}}},",
                "\"dsm\":{{\"clean\":{dsm_clean},\"flags\":{dsm_flags}}}}},",
                "\"atomic_sections\":{{\"bound\":{bound},\"clean\":{a_clean},\"flags\":{a_flags}}},",
                "\"space\":{{\"class\":\"{s_class}\",\"ok\":{s_ok},\"nodes\":{s_nodes}}},",
                "\"names\":{{\"assigns\":{assigns},\"space\":{n_space},\"exact\":{n_exact}}},",
                "\"rmr\":{{\"cc\":{rmr_cc},\"dsm\":{rmr_dsm}}},",
                "\"table1\":{table1}}}"
            ),
            id = v.algo,
            label = json_escape(v.algo.label()),
            model = v.algo.model().label(),
            cc_clean = r.local_spin_clean(MemoryModel::CacheCoherent),
            cc_flags = json_flags(&r.spin_cc),
            dsm_clean = r.local_spin_clean(MemoryModel::Dsm),
            dsm_flags = json_flags(&r.spin_dsm),
            bound = ATOMIC_BOUND,
            a_clean = r.atomic_clean(),
            a_flags = json_flags(&r.atomic),
            s_class = space_label(r.space_class),
            s_ok = r.space_ok(),
            s_nodes = space_nodes,
            assigns = r.assigns_names,
            n_space = r.name_space,
            n_exact = r.names_exact(),
            rmr_cc = json_cost(r.rmr_cc),
            rmr_dsm = json_cost(r.rmr_dsm),
            table1 = table1,
        ));
    }
    format!(
        "{{\"schema\":1,\"config\":{{\"n\":{},\"k\":{},\"max_locs\":{}}},\"algorithms\":[{}]}}",
        cfg.n,
        cfg.k,
        cfg.max_locs,
        algos.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdicts() -> Vec<AlgoVerdict> {
        analyze_all(&Config::default()).expect("every catalog variant must be describable")
    }

    /// The tier-1 pin: the full expected verdict matrix for all 13
    /// catalog variants at the default (N=8, k=2).
    #[test]
    fn expected_verdict_matrix_holds() {
        let v = verdicts();
        assert_eq!(v.len(), Algorithm::ALL.len());
        let fails = expected_matrix_failures(&v);
        assert!(
            fails.is_empty(),
            "verdict matrix deviations:\n  {}",
            fails.join("\n  ")
        );
    }

    #[test]
    fn table1_bounds_are_exact_at_default_sizing() {
        // N=8, k=2: 7(N-k)=42, 7k*ceil(log2(N/k))=28, 14(N-k)=84,
        // 14k*ceil(log2(N/k))=56. Pin the numbers, not just `matches`.
        let v = verdicts();
        let rmr =
            |a: Algorithm, m: MemoryModel| v.iter().find(|x| x.algo == a).unwrap().report.rmr(m);
        assert_eq!(
            rmr(Algorithm::CcChain, MemoryModel::CacheCoherent),
            Cost::Finite(42)
        );
        assert_eq!(
            rmr(Algorithm::CcTree, MemoryModel::CacheCoherent),
            Cost::Finite(28)
        );
        assert_eq!(rmr(Algorithm::DsmChain, MemoryModel::Dsm), Cost::Finite(84));
        assert_eq!(rmr(Algorithm::DsmTree, MemoryModel::Dsm), Cost::Finite(56));
    }

    #[test]
    fn queue_flags_name_the_scan_statements() {
        let v = verdicts();
        let q = v.iter().find(|x| x.algo == Algorithm::QueueFig1).unwrap();
        // The enqueue test-scan and the dequeue shift are the O(N)
        // statements; the 4-access enqueue itself sits exactly at the
        // bound and must NOT be flagged.
        assert!(q
            .report
            .atomic
            .iter()
            .any(|f| f.section == Section::Entry && f.pc == 1));
        assert!(q
            .report
            .atomic
            .iter()
            .any(|f| f.section == Section::Exit && f.pc == 0));
        assert!(!q
            .report
            .atomic
            .iter()
            .any(|f| f.section == Section::Entry && f.pc == 0));
    }

    #[test]
    fn fig6_root_stage_uses_exactly_k_plus_2_spin_locations() {
        let cfg = Config::default();
        let v = analyze_algorithm(Algorithm::DsmChain, &cfg).unwrap();
        let root_stage = v
            .report
            .space
            .iter()
            .find(|s| s.exclusion == Some(cfg.k))
            .expect("chain must contain the j=k stage");
        assert_eq!(root_stage.spin_locations, cfg.k + 2);
        assert_eq!(root_stage.bound, Some(cfg.k + 2));
    }

    #[test]
    fn global_spin_is_flagged_with_statement_detail() {
        let v = verdicts();
        let gs = v.iter().find(|x| x.algo == Algorithm::GlobalSpin).unwrap();
        // CC: the unbounded-retry rule fires (its spin is read-only).
        assert!(gs
            .report
            .spin_cc
            .iter()
            .any(|f| f.detail.contains("unbounded retry")));
        // DSM: the spin target is a globally-homed counter.
        assert!(gs
            .report
            .spin_dsm
            .iter()
            .any(|f| f.detail.contains("remote under DSM")));
    }

    /// Nodes outside the catalog (reference locks, renaming grid) are
    /// describable and analyzable directly.
    #[test]
    fn reference_nodes_analyze_clean() {
        use kex_sim::protocol::ProtocolBuilder;

        // MCS: local-spin on both models, O(1) RMR.
        let mut b = ProtocolBuilder::new(6);
        let root = kex_core::sim::mcs::mcs(&mut b);
        let r = analyze_protocol(&b.finish(root, 1)).unwrap();
        assert!(r.local_spin_clean(MemoryModel::CacheCoherent));
        assert!(r.local_spin_clean(MemoryModel::Dsm));
        assert!(r.rmr_cc.is_finite() && r.rmr_dsm.is_finite());

        // Yang–Anderson: local-spin on both models, finite RMR.
        let mut b = ProtocolBuilder::new(8);
        let root = kex_core::sim::yang_anderson::yang_anderson(&mut b);
        let r = analyze_protocol(&b.finish(root, 1)).unwrap();
        assert!(r.local_spin_clean(MemoryModel::CacheCoherent));
        assert!(r.local_spin_clean(MemoryModel::Dsm));
        assert!(r.rmr_cc.is_finite() && r.rmr_dsm.is_finite());
    }

    #[test]
    fn splitter_grid_name_space_is_larger_than_k() {
        use kex_sim::protocol::ProtocolBuilder;
        let mut b = ProtocolBuilder::new(6);
        let root = kex_core::sim::splitter::splitter_grid_standalone(&mut b, 3);
        let r = analyze_protocol(&b.finish(root, 3)).unwrap();
        // The read/write-only grid assigns names but needs k(k+1)/2 of
        // them — renaming, not exact k-assignment.
        assert!(r.assigns_names);
        assert_eq!(r.name_space, 6);
        assert!(!r.names_exact());
    }

    #[test]
    fn undescribable_nodes_are_reported_not_skipped() {
        use kex_sim::mem::MemCtx;
        use kex_sim::node::Node;
        use kex_sim::protocol::ProtocolBuilder;
        use kex_sim::types::{Step, Word};

        struct Opaque;
        impl Node for Opaque {
            fn name(&self) -> String {
                "opaque".into()
            }
            fn step(&self, _: Section, _: u32, _: &mut [Word], _: &mut MemCtx<'_>) -> Step {
                Step::Return
            }
        }
        let mut b = ProtocolBuilder::new(2);
        let root = b.add(Opaque);
        let err = analyze_protocol(&b.finish(root, 1)).unwrap_err();
        assert_eq!(err.node, "opaque");
        assert!(err.detail.contains("not describable"));
    }

    #[test]
    fn json_report_is_well_formed_enough_to_pin() {
        let v = verdicts();
        let json = render_json(&v, &Config::default());
        assert!(json.starts_with("{\"schema\":1,"));
        assert!(json.contains("\"id\":\"GlobalSpin\""));
        assert!(json.contains("\"rmr\":{\"cc\":42,"));
        assert_eq!(
            json.matches("\"table1\":{\"formula\"").count(),
            4,
            "exactly the four tabulated variants carry a formula check"
        );
        // Balanced braces (hand-rolled writer sanity).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }
}
